//! End-to-end tests of the localization daemon: protocol equivalence with
//! the direct [`bugassist::Localizer`] API, concurrency under a mixed
//! TCAS + mutated-minic workload, forced cache eviction, and graceful
//! shutdown.

use bugassist::Localizer;
use service::protocol::{canonicalize, ranked_to_json, report_to_json};
use service::{Client, ClientError, Job, JobSpec, Json, Server, ServiceConfig};
use siemens::{tcas_trusted_lines, tcas_versions, TCAS_ENTRY, TCAS_SOURCE};
use std::sync::Arc;

/// The canonical (timing-zeroed) serialization the daemon must reproduce
/// byte for byte, computed by running the job directly.
fn expected_canonical(job: &Job) -> String {
    let program = minic::parse_program(&job.program).expect("job program parses");
    let localizer = Localizer::new(
        &program,
        &job.entry,
        &job.bmc_spec(),
        &job.localizer_config(),
    )
    .expect("job encodes");
    if job.inputs.len() == 1 {
        let report = localizer.localize(&job.inputs[0]).expect("localizes");
        canonicalize(&report_to_json(&report)).to_string()
    } else {
        let ranked = localizer
            .localize_batch(&job.inputs)
            .expect("batch localizes");
        canonicalize(&ranked_to_json(&ranked)).to_string()
    }
}

fn canonical(body: &Json) -> String {
    canonicalize(body).to_string()
}

/// A small faulty program family: the base constant on line 2 is mutated
/// per variant, so each variant is a distinct program with a distinct
/// cache entry and a distinct (but deterministic) localization answer.
fn mutated_minic_job(delta: i64) -> Job {
    let base =
        minic::parse_program("int main(int x) {\nint y = x + 2;\nint z = y * 1;\nreturn z;\n}")
            .expect("base parses");
    let mutated = minic::apply_mutation(
        &base,
        &minic::Mutation::BumpConstant {
            line: minic::Line(2),
            occurrence: 0,
            delta,
        },
    )
    .expect("mutation applies");
    // Golden function is x + 1, so inputs where x + 2 + delta != x + 1 fail.
    Job::new(
        minic::pretty_program(&mutated),
        "main",
        JobSpec::ReturnEquals(4),
        vec![vec![3]],
    )
}

/// The TCAS version-1 localize job the paper's Table 1 row starts from.
fn tcas_job(inputs: Vec<Vec<i64>>, golden: i64) -> Job {
    let version = tcas_versions().into_iter().next().expect("v1 exists");
    let faulty = version.build(TCAS_SOURCE);
    let mut job = Job::new(
        minic::pretty_program(&faulty),
        TCAS_ENTRY,
        JobSpec::ReturnEquals(golden),
        inputs,
    );
    job.options.width = 16;
    job.options.unwind = 6;
    job.options.max_inline_depth = 8;
    job.options.max_suspect_sets = 4;
    job.options.trusted_lines = tcas_trusted_lines().iter().map(|l| l.0).collect();
    job
}

/// Failing TCAS v1 vectors sharing one golden output (largest such group).
fn tcas_failing_vectors() -> (Vec<Vec<i64>>, i64) {
    use std::collections::BTreeMap;
    let version = tcas_versions().into_iter().next().expect("v1 exists");
    let faulty = version.build(TCAS_SOURCE);
    let pool = siemens::tcas_test_vectors(300, 2011);
    let interp = siemens::tcas_interp_config();
    let mut by_golden: BTreeMap<i64, Vec<Vec<i64>>> = BTreeMap::new();
    for input in &pool {
        let golden = siemens::tcas_golden_output(input);
        let outcome = bmc::run_program(&faulty, TCAS_ENTRY, input, &[], interp);
        if outcome.result != Some(golden) || !outcome.is_ok() {
            by_golden.entry(golden).or_default().push(input.clone());
        }
    }
    let (&golden, vectors) = by_golden
        .iter()
        .max_by_key(|(_, v)| v.len())
        .expect("v1 has failing vectors");
    assert!(vectors.len() >= 2, "need >= 2 failing vectors");
    (vectors.iter().take(3).cloned().collect(), golden)
}

#[test]
fn concurrent_mixed_workload_matches_direct_localizer() {
    let (tcas_inputs, tcas_golden) = tcas_failing_vectors();
    // The mixed workload: one TCAS job plus three mutated-minic variants.
    let jobs: Vec<Job> = vec![
        tcas_job(vec![tcas_inputs[0].clone()], tcas_golden),
        mutated_minic_job(1),
        mutated_minic_job(2),
        mutated_minic_job(-3),
    ];
    let expected: Arc<Vec<String>> = Arc::new(jobs.iter().map(expected_canonical).collect());
    let jobs = Arc::new(jobs);

    // One shard: all four programs fit without collision evictions, so the
    // hit/miss arithmetic below is exact.
    let server = Server::start(ServiceConfig {
        workers: 4,
        cache_capacity: 8,
        cache_shards: 1,
        queue_capacity: 4,
        ..ServiceConfig::default()
    })
    .expect("server starts");
    let addr = server.local_addr();

    // N client threads hammer the daemon; each thread starts at a different
    // job offset so distinct programs are always in flight simultaneously.
    const CLIENTS: usize = 6;
    const ROUNDS: usize = 3;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let jobs = Arc::clone(&jobs);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connects");
                for round in 0..ROUNDS {
                    for i in 0..jobs.len() {
                        let j = (c + round + i) % jobs.len();
                        let outcome = client.localize(jobs[j].clone()).expect("localizes");
                        assert_eq!(
                            canonical(&outcome.body),
                            expected[j],
                            "client {c} round {round} job {j} got a wrong or \
                             interleaved response"
                        );
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread panicked");
    }

    // 6 clients × 3 rounds × 4 jobs against 4 distinct programs: the
    // single-flight cache builds each program exactly once, every other
    // request is a hit (possibly one that waited on the builder).
    let mut client = Client::connect(addr).expect("connects");
    let stats = client.stats().expect("stats");
    let cache = stats.get("cache").expect("cache section");
    let hits = cache.get("hits").and_then(Json::as_u64).expect("hits");
    let misses = cache.get("misses").and_then(Json::as_u64).expect("misses");
    let entries = cache
        .get("entries")
        .and_then(Json::as_u64)
        .expect("entries");
    assert_eq!(misses, 4, "one single-flight build per distinct program");
    assert_eq!(hits, (CLIENTS * ROUNDS * 4 - 4) as u64);
    assert_eq!(entries, 4, "one entry per distinct program");
    let localized = stats
        .get("requests")
        .and_then(|r| r.get("localize"))
        .and_then(Json::as_u64)
        .expect("localize counter");
    assert_eq!(localized, (CLIENTS * ROUNDS * 4) as u64);
    server.shutdown();
}

#[test]
fn batch_endpoint_is_byte_identical_to_localize_batch() {
    let (tcas_inputs, tcas_golden) = tcas_failing_vectors();
    let tcas = tcas_job(tcas_inputs, tcas_golden);
    let minic_batch = Job {
        inputs: vec![vec![3], vec![5], vec![9]],
        ..mutated_minic_job(1)
    };

    let server = Server::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    })
    .expect("server starts");
    let mut client = Client::connect(server.local_addr()).expect("connects");
    for job in [tcas, minic_batch] {
        let expected = expected_canonical(&job);
        let cold = client.batch(job.clone()).expect("cold batch");
        assert!(!cold.cache_hit);
        assert_eq!(canonical(&cold.body), expected);
        // And again from the warm cache: same bytes, no rebuild.
        let warm = client.batch(job).expect("warm batch");
        assert!(warm.cache_hit);
        assert_eq!(warm.build_ms, 0);
        assert_eq!(canonical(&warm.body), expected);
    }
    server.shutdown();
}

#[test]
fn forced_eviction_with_capacity_one_stays_correct() {
    // Two programs alternating through a one-entry cache: every request
    // evicts the other program's prepared localizer, and answers must stay
    // byte-identical throughout.
    let jobs = Arc::new(vec![mutated_minic_job(1), mutated_minic_job(2)]);
    let expected: Arc<Vec<String>> = Arc::new(jobs.iter().map(expected_canonical).collect());

    let server = Server::start(ServiceConfig {
        workers: 2,
        cache_capacity: 1,
        cache_shards: 1,
        queue_capacity: 2,
        ..ServiceConfig::default()
    })
    .expect("server starts");
    let addr = server.local_addr();

    let handles: Vec<_> = (0..2)
        .map(|c| {
            let jobs = Arc::clone(&jobs);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connects");
                for round in 0..4 {
                    let j = (c + round) % 2;
                    let outcome = client.localize(jobs[j].clone()).expect("localizes");
                    assert_eq!(canonical(&outcome.body), expected[j]);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread panicked");
    }

    let mut client = Client::connect(addr).expect("connects");
    let stats = client.stats().expect("stats");
    let cache = stats.get("cache").expect("cache section");
    assert_eq!(cache.get("capacity").and_then(Json::as_u64), Some(1));
    let evictions = cache
        .get("evictions")
        .and_then(Json::as_u64)
        .expect("evictions");
    assert!(
        evictions >= 2,
        "alternating programs must evict: {evictions}"
    );
    server.shutdown();
}

/// A two-function program for the edit-loop tests: `main` calls `helper`,
/// plus an uncalled `scratch` function for dead-code edits. The golden
/// function is `x + 1`, so `helper(x) + 2 = 2x + 2` fails for `x = 3`.
fn edit_base_src() -> String {
    "int scratch(int a) {\nreturn a - 1;\n}\nint helper(int a) {\nreturn a + a;\n}\nint main(int x) {\nint y = helper(x) + 2;\nreturn y;\n}".to_string()
}

fn edit_job(source: String) -> Job {
    Job::new(source, "main", JobSpec::ReturnEquals(4), vec![vec![3]])
}

#[test]
fn revise_matches_cold_rebuild_byte_for_byte_across_edit_classes() {
    let server = Server::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    })
    .expect("server starts");
    let mut client = Client::connect(server.local_addr()).expect("connects");

    // Cold request for the base program: establishes the chain's first key.
    let base = edit_job(edit_base_src());
    let cold = client.localize(base.clone()).expect("cold localize");
    assert!(!cold.cache_hit);
    assert_eq!(canonical(&cold.body), expected_canonical(&base));

    // Edit 1 — a blank line inside main: pure line shift. The revise must
    // reuse the bit-blasted preparation and still answer exactly like a
    // cold rebuild of the edited source.
    let shifted =
        edit_job(edit_base_src().replace("int main(int x) {\nint y", "int main(int x) {\n\nint y"));
    let rev1 = client.revise(shifted.clone(), cold.key).expect("revise 1");
    assert_eq!(rev1.delta, "line_shift");
    assert!(rev1.reused, "line shift must not re-encode");
    assert!(
        !rev1.solved,
        "line shift must serve the remapped pre-edit report without solving"
    );
    assert!(!rev1.outcome.cache_hit, "new key, delta-built");
    assert_eq!(canonical(&rev1.outcome.body), expected_canonical(&shifted));
    // The blame moved with the shift: the report differs from the pre-edit
    // one in lines (sanity check that this is not just a cache hit).
    assert_ne!(canonical(&rev1.outcome.body), canonical(&cold.body));

    // Edit 2 — dead-code edit on top of the shifted version: `scratch` is
    // never called from main, so everything is still reused.
    let dead = edit_job(shifted.program.replace("return a - 1;", "return a - 2;"));
    let rev2 = client
        .revise(dead.clone(), rev1.outcome.key)
        .expect("revise 2");
    assert_eq!(rev2.delta, "dead_function");
    assert!(rev2.reused);
    assert!(!rev2.solved, "dead-code edits replay the report too");
    assert_eq!(canonical(&rev2.outcome.body), expected_canonical(&dead));

    // Edit 3 — semantic edit in the reachable helper: full re-encode, same
    // bytes as a cold build of that source.
    let semantic = edit_job(dead.program.replace("return a + a;", "return a + a + 1;"));
    let rev3 = client
        .revise(semantic.clone(), rev2.outcome.key)
        .expect("revise 3");
    assert_eq!(rev3.delta, "function_rebuild");
    assert!(!rev3.reused);
    assert!(rev3.solved, "a semantic edit must actually re-solve");
    assert_eq!(canonical(&rev3.outcome.body), expected_canonical(&semantic));

    // Re-revising an already-served source is a plain cache hit.
    let rev4 = client
        .revise(semantic.clone(), rev3.outcome.key)
        .expect("revise 4");
    assert_eq!(rev4.delta, "cache_hit");
    assert!(rev4.reused);
    assert!(
        !rev4.solved,
        "an undo to a served version replays its report"
    );
    assert!(rev4.outcome.cache_hit);
    assert_eq!(rev4.outcome.key, rev3.outcome.key);
    assert_eq!(canonical(&rev4.outcome.body), expected_canonical(&semantic));

    // A bogus prev_key degrades to a cold build, never an error.
    let fresh = edit_job(
        semantic
            .program
            .replace("return a + a + 1;", "return a + a + 2;"),
    );
    let rev5 = client.revise(fresh.clone(), 0xdead_beef).expect("revise 5");
    assert_eq!(rev5.delta, "prev_missing");
    assert!(!rev5.reused);
    assert!(rev5.solved);
    assert_eq!(canonical(&rev5.outcome.body), expected_canonical(&fresh));

    // The stats endpoint accounts for the whole chain.
    let stats = client.stats().expect("stats");
    let requests = stats.get("requests").expect("requests");
    assert_eq!(requests.get("revise").and_then(Json::as_u64), Some(5));
    // line_shift + dead_function + cache_hit reused; the rebuilds did not.
    assert_eq!(
        requests.get("revise_reuses").and_then(Json::as_u64),
        Some(3)
    );
    // ... and those same three never ran the MAX-SAT enumeration.
    assert_eq!(
        requests.get("revise_solve_skips").and_then(Json::as_u64),
        Some(3)
    );
    let last = stats.get("last_job").expect("last_job");
    assert_eq!(last.get("op").and_then(Json::as_str), Some("revise"));
    assert_eq!(
        last.get("delta").and_then(Json::as_str),
        Some("prev_missing")
    );
    server.shutdown();
}

#[test]
fn revise_resolves_when_a_shifted_statement_lands_on_a_trusted_line() {
    // Pre-edit, trusted line 3 is blank — it hardens nothing. The edit
    // deletes the blank, so the statement from line 4 now sits on the
    // trusted line 3 and a cold build must never blame it. Serving the
    // remapped pre-edit report (where that statement was untrusted and
    // blamable) would silently break both the byte-identity guarantee and
    // the trusted-lines contract, so the revise must detect the effective
    // trusted-selector change and actually re-solve.
    let mut before = Job::new(
        "int main(int x) {\nint y = x + 2;\n\nint z = y + 0;\nreturn z;\n}".to_string(),
        "main",
        JobSpec::ReturnEquals(4),
        vec![vec![3]],
    );
    before.options.trusted_lines = vec![3];
    let mut after = Job::new(
        "int main(int x) {\nint y = x + 2;\nint z = y + 0;\nreturn z;\n}".to_string(),
        "main",
        JobSpec::ReturnEquals(4),
        vec![vec![3]],
    );
    after.options.trusted_lines = vec![3];

    let server = Server::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    })
    .expect("server starts");
    let mut client = Client::connect(server.local_addr()).expect("connects");
    let cold = client.localize(before.clone()).expect("cold localize");
    assert_eq!(canonical(&cold.body), expected_canonical(&before));
    // Pre-edit, line 4 ("int z = ...") is blamable.
    let pre_lines = cold
        .body
        .get("suspect_lines")
        .and_then(Json::as_arr)
        .unwrap();
    assert!(pre_lines.contains(&Json::Int(4)), "{pre_lines:?}");

    let rev = client.revise(after.clone(), cold.key).expect("revise");
    assert_eq!(rev.delta, "line_shift", "still a pure line shift");
    assert!(rev.reused, "the bit-blast is still reusable");
    assert!(
        rev.solved,
        "the effective trusted set changed: the report must be re-solved, not remapped"
    );
    assert_eq!(canonical(&rev.outcome.body), expected_canonical(&after));
    let post_lines = rev
        .outcome
        .body
        .get("suspect_lines")
        .and_then(Json::as_arr)
        .unwrap();
    assert!(
        !post_lines.contains(&Json::Int(3)),
        "trusted line 3 blamed after revise: {post_lines:?}"
    );
    server.shutdown();
}

#[test]
fn revise_reports_cold_build_errors_verbatim() {
    let server = Server::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    })
    .expect("server starts");
    let mut client = Client::connect(server.local_addr()).expect("connects");
    let base = edit_job(edit_base_src());
    let cold = client.localize(base.clone()).expect("cold localize");

    // An edit that breaks the *dead* function's types: a cold build of this
    // source fails typecheck, so the revise must too — reuse paths never
    // skip an error a cold rebuild would report.
    let broken = edit_job(edit_base_src().replace("return a - 1;", "return nosuchvar;"));
    let err = client.revise(broken, cold.key).expect_err("must fail");
    assert!(
        matches!(&err, ClientError::Server { kind, message }
            if kind == "type_error" && message.contains("type error")),
        "{err:?}"
    );

    // Options changed alongside the edit: the old preparation answers a
    // different question, so the revise silently falls back to a cold
    // build with the new options.
    let mut wider =
        edit_job(edit_base_src().replace("int main(int x) {\nint y", "int main(int x) {\n\nint y"));
    wider.options.width = 16;
    let rev = client.revise(wider.clone(), cold.key).expect("revise");
    assert_eq!(rev.delta, "options_changed");
    assert!(!rev.reused);
    assert_eq!(canonical(&rev.outcome.body), expected_canonical(&wider));
    server.shutdown();
}

#[test]
fn health_stats_and_error_paths() {
    let server = Server::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    })
    .expect("server starts");
    let mut client = Client::connect(server.local_addr()).expect("connects");

    // Health answers inline, before any job has run.
    client.health().expect("health");

    // A garbage program is a server-side error, not a hang or a crash.
    let garbage = Job::new("int main( {", "main", JobSpec::Assertions, vec![vec![1]]);
    let err = client.localize(garbage).expect_err("must fail");
    assert!(
        matches!(&err, ClientError::Server { kind, .. } if kind == "parse_error"),
        "{err:?}"
    );

    // An arity mismatch travels back as an error string too.
    let wrong_arity = Job::new(
        "int main(int x) { return x; }",
        "main",
        JobSpec::ReturnEquals(0),
        vec![vec![1, 2]],
    );
    let err = client.localize(wrong_arity).expect_err("must fail");
    assert!(
        matches!(&err, ClientError::Server { kind, .. } if kind == "arity_mismatch"),
        "{err:?}"
    );

    // The connection survives errors; a good job still works, and the stats
    // endpoint surfaces the per-request solver counters of that job.
    let good = mutated_minic_job(1);
    client.localize(good).expect("localizes after errors");
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats
            .get("requests")
            .and_then(|r| r.get("errors"))
            .and_then(Json::as_u64),
        Some(2)
    );
    let last_job = stats.get("last_job").expect("last_job");
    assert_eq!(last_job.get("op").and_then(Json::as_str), Some("localize"));
    for field in ["reduce_dbs", "arena_bytes", "prepare_ms", "elapsed_ms"] {
        assert!(
            last_job.get(field).and_then(Json::as_u64).is_some(),
            "last_job must carry {field}"
        );
    }
    let solver = stats.get("solver").expect("solver totals");
    assert!(
        solver
            .get("arena_bytes_peak")
            .and_then(Json::as_u64)
            .unwrap()
            > 0
    );
    server.shutdown();
}

/// The formula-diet knobs travel over the wire, change the cache key, and —
/// because CoMSS selection is canonical — never change the *answer*: the
/// suspects of a simplified job are byte-identical to the raw-formula job's,
/// while the stats prove two different formulas were solved.
#[test]
fn simplify_and_gate_cache_knobs_round_trip_with_identical_reports() {
    let server = Server::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    })
    .expect("server starts");
    let mut client = Client::connect(server.local_addr()).expect("connects");

    let dieted = mutated_minic_job(1);
    let mut raw = mutated_minic_job(1);
    raw.options.simplify = false;
    raw.options.gate_cache = false;

    let a = client.localize(dieted).expect("dieted job localizes");
    let b = client.localize(raw).expect("raw job localizes");
    // Distinct options => distinct prepared-cache entries.
    assert_ne!(a.key, b.key);
    let semantic = |body: &Json| {
        (
            canonical(body.get("suspects").expect("suspects present")),
            canonical(body.get("suspect_lines").expect("suspect_lines present")),
        )
    };
    assert_eq!(semantic(&a.body), semantic(&b.body));
    let stats_of = |body: &Json| body.get("stats").cloned();
    let dieted_stats = stats_of(&a.body).expect("stats");
    let raw_stats = stats_of(&b.body).expect("stats");
    assert!(
        dieted_stats.get("hard_clauses").and_then(Json::as_u64)
            < raw_stats.get("hard_clauses").and_then(Json::as_u64)
    );
    assert_eq!(
        raw_stats.get("vars_eliminated").and_then(Json::as_u64),
        Some(0)
    );
    assert!(dieted_stats.get("vars_eliminated").and_then(Json::as_u64) > Some(0));

    // The stats endpoint aggregates the diet counters and surfaces them on
    // the last-job snapshot.
    let stats = client.stats().expect("stats");
    let formula = stats.get("formula").expect("formula totals");
    assert!(formula.get("vars_eliminated").and_then(Json::as_u64) > Some(0));
    // (This toy program is too small for guaranteed gate sharing; the TCAS
    // benches assert a strictly positive hit count on a real workload.)
    assert!(formula.get("gates_cached").and_then(Json::as_u64).is_some());
    let last_job = stats.get("last_job").expect("last_job");
    for field in [
        "encode_gates_cached",
        "vars_eliminated",
        "clauses_subsumed",
        "simplify_ms",
    ] {
        assert!(
            last_job.get(field).and_then(Json::as_u64).is_some(),
            "last_job must carry {field}"
        );
    }
    server.shutdown();
}

#[test]
fn wire_level_raw_lines_work_without_the_client() {
    // Talk to the daemon with nothing but a socket and hand-written JSON:
    // documents (and pins) the wire format the README shows.
    use std::io::{BufRead, BufReader, Write};
    let server = Server::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    })
    .expect("server starts");
    let stream = std::net::TcpStream::connect(server.local_addr()).expect("connects");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;

    writer
        .write_all(
            concat!(
                r#"{"id":7,"op":"localize","program":"int main(int x) {\nint y = x + 2;\nreturn y;\n}","#,
                r#""entry":"main","spec":{"return_equals":4},"inputs":[[5]],"width":8}"#,
                "\n"
            )
            .as_bytes(),
        )
        .expect("writes");
    let mut line = String::new();
    reader.read_line(&mut line).expect("reads");
    let response = Json::parse(line.trim_end()).expect("response parses");
    assert_eq!(response.get("id").and_then(Json::as_i64), Some(7));
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(response.get("cache").and_then(Json::as_str), Some("miss"));
    let lines = response
        .get("report")
        .and_then(|r| r.get("suspect_lines"))
        .and_then(Json::as_arr)
        .expect("suspect lines");
    assert!(
        lines.contains(&Json::Int(2)),
        "line 2 is the bug: {response}"
    );

    // Unparseable request lines get an error response, not a dropped
    // connection.
    writer.write_all(b"this is not json\n").expect("writes");
    let mut line = String::new();
    reader.read_line(&mut line).expect("reads");
    let response = Json::parse(line.trim_end()).expect("response parses");
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    server.shutdown();
}

#[test]
fn shutdown_op_drains_and_stops_the_daemon() {
    let server = Server::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    })
    .expect("server starts");
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connects");
    client.localize(mutated_minic_job(1)).expect("localizes");
    client.shutdown().expect("acknowledged");
    // wait() returns only after the drain completes; afterwards the port
    // no longer accepts work.
    server.wait();
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut late) => {
            assert!(late.health().is_err(), "daemon must be gone");
        }
    }
}

#[test]
fn budgeted_job_returns_anytime_or_exact_and_never_pollutes_the_replay_cache() {
    let (inputs, golden) = tcas_failing_vectors();
    let server = Server::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    })
    .expect("server starts");
    let mut client = Client::connect(server.local_addr()).expect("connects");

    // Warm the prepared entry with a different failing input, so the
    // budgeted request below spends its deadline on the solve, not the
    // bit-blast build.
    let warm = tcas_job(vec![inputs[1].clone()], golden);
    client.localize(warm).expect("warm build");

    let exact_job = tcas_job(vec![inputs[0].clone()], golden);
    let expected = expected_canonical(&exact_job);
    let exact_suspects = Json::parse(&expected)
        .expect("expected parses")
        .get("suspects")
        .and_then(Json::as_arr)
        .expect("exact suspects")
        .len();

    let mut budgeted = exact_job.clone();
    budgeted.deadline_ms = Some(25);
    match client.localize(budgeted) {
        Ok(out) => {
            let complete = out
                .body
                .get("complete")
                .and_then(Json::as_bool)
                .expect("report carries the complete flag");
            if complete {
                // The deadline was generous enough after all: the answer
                // must be the exact canonical report, bit for bit.
                assert_eq!(canonical(&out.body), expected);
            } else {
                // A cut enumeration reports a prefix: never more ranks
                // than the optimum run found.
                let suspects = out
                    .body
                    .get("suspects")
                    .and_then(Json::as_arr)
                    .expect("suspects")
                    .len();
                assert!(
                    suspects <= exact_suspects,
                    "anytime run reported {suspects} ranks, exact run {exact_suspects}"
                );
            }
        }
        // The deadline may expire while the job is queued; that is a
        // structured answer, not a hang.
        Err(err) => assert_eq!(err.kind(), Some("deadline_exceeded"), "{err:?}"),
    }

    // Regression: the cut solve must not have left a truncated report in
    // the replay cache — an unbudgeted request of the same input returns
    // the exact canonical report.
    let full = client.localize(exact_job).expect("full localize");
    assert_eq!(canonical(&full.body), expected);
    assert_eq!(
        full.body.get("complete").and_then(Json::as_bool),
        Some(true)
    );
    server.shutdown();
}

#[test]
fn oversized_request_line_is_rejected_with_a_structured_error() {
    use std::io::{BufRead, BufReader, Read, Write};
    let server = Server::start(ServiceConfig {
        workers: 1,
        max_request_bytes: 1024,
        ..ServiceConfig::default()
    })
    .expect("server starts");
    let mut stream = std::net::TcpStream::connect(server.local_addr()).expect("connects");
    stream.write_all(&vec![b'x'; 8192]).expect("writes");
    stream.write_all(b"\n").expect("writes");
    let mut reader = BufReader::new(stream.try_clone().expect("clones"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("reads");
    let response = Json::parse(line.trim_end()).expect("response parses");
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        response.get("kind").and_then(Json::as_str),
        Some("request_too_large")
    );
    // The oversized line destroyed the connection's framing, so the server
    // answers once and closes. Closing with unread bytes in the receive
    // buffer makes the kernel send RST, so the client sees either a clean
    // EOF or a connection reset — never more data.
    let mut rest = Vec::new();
    match reader.read_to_end(&mut rest) {
        Ok(n) => assert_eq!(n, 0, "connection must be closed after rejection"),
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset, "{e:?}"),
    }
    server.shutdown();
}

#[test]
fn saturated_queue_sheds_budgeted_jobs_instead_of_blocking() {
    let (inputs, golden) = tcas_failing_vectors();
    let server = Server::start(ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServiceConfig::default()
    })
    .expect("server starts");
    let addr = server.local_addr();
    let mut job = tcas_job(vec![inputs[0].clone()], golden);
    // A generous deadline opts the job into admission control without ever
    // expiring mid-test.
    job.deadline_ms = Some(120_000);
    let expected = expected_canonical(&job);

    // Four no-retry clients race one worker and one queue slot: the first
    // two win, the rest must be shed immediately with `overloaded`.
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let job = job.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connects");
                client.localize(job)
            })
        })
        .collect();
    // A fifth client retries with backoff: the shed is transient, so it
    // must eventually get the real answer.
    let retrying = {
        let job = job.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect_with(
                addr,
                service::ClientConfig {
                    retries: 12,
                    retry_base: std::time::Duration::from_millis(100),
                    seed: 42,
                    ..service::ClientConfig::default()
                },
            )
            .expect("connects");
            client.localize(job)
        })
    };
    let mut ok = 0u64;
    let mut shed = 0u64;
    for handle in handles {
        match handle.join().expect("client thread must not panic") {
            Ok(out) => {
                assert_eq!(canonical(&out.body), expected);
                ok += 1;
            }
            Err(err) => {
                assert_eq!(err.kind(), Some("overloaded"), "{err:?}");
                shed += 1;
            }
        }
    }
    assert_eq!(ok + shed, 4);
    assert!(ok >= 1, "at least the first admitted job completes");
    let out = retrying
        .join()
        .expect("retry thread must not panic")
        .expect("retries ride out the overload");
    assert_eq!(canonical(&out.body), expected);

    let mut client = Client::connect(addr).expect("connects");
    let stats = client.stats().expect("stats");
    let stats_shed = stats
        .get("queue")
        .and_then(|q| q.get("shed"))
        .and_then(Json::as_u64)
        .expect("queue.shed");
    assert!(
        stats_shed >= shed,
        "stats undercount sheds: {stats_shed} < {shed}"
    );
    server.shutdown();
}

#[cfg(feature = "faults")]
#[test]
fn injected_worker_panics_become_structured_errors_and_the_worker_survives() {
    use service::{FaultConfig, FaultPlan};
    let plan = Arc::new(FaultPlan::new(FaultConfig {
        seed: 11,
        panic_period: 2,
        ..FaultConfig::default()
    }));
    let server = Server::start(ServiceConfig {
        workers: 1,
        fault_plan: Some(Arc::clone(&plan)),
        ..ServiceConfig::default()
    })
    .expect("server starts");
    let mut client = Client::connect(server.local_addr()).expect("connects");
    let job = mutated_minic_job(1);
    let expected = expected_canonical(&job);
    let mut oks = 0;
    let mut panics = 0;
    for _ in 0..4 {
        match client.localize(job.clone()) {
            Ok(out) => {
                // Jobs the fault missed are answered byte-identically to a
                // fault-free daemon.
                assert_eq!(canonical(&out.body), expected);
                oks += 1;
            }
            Err(err) => {
                assert_eq!(err.kind(), Some("internal_error"), "{err:?}");
                panics += 1;
            }
        }
    }
    assert_eq!(
        (oks, panics),
        (2, 2),
        "a period-2 panic fault fires on exactly alternate executes"
    );
    assert_eq!(plan.injected().1, 2);
    // The single worker caught both panics and is still serving.
    client.health().expect("daemon alive after worker panics");
    server.shutdown();
}

/// A program exercising every dataflow lint at width 8: an uninitialized
/// read (warning-grade: `u` is assigned on one branch), a dead store,
/// unreachable code, a constant branch and a truncated constant.
const LINT_WITNESS: &str = "int main(int x) {\nint u;\nint dead = 5;\ndead = x;\nif (0 > 1) {\nu = 300;\n}\nreturn u + x;\n}";

#[test]
fn analyze_op_returns_all_five_dataflow_lint_kinds() {
    let server = Server::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    })
    .expect("server starts");
    let mut client = Client::connect(server.local_addr()).expect("connects");

    let diags = client.analyze(LINT_WITNESS, 8).expect("analyze");
    let Json::Arr(items) = &diags else {
        panic!("diagnostics is not an array: {diags}");
    };
    let kinds: Vec<&str> = items
        .iter()
        .map(|d| d.get("kind").and_then(Json::as_str).expect("kind"))
        .collect();
    for kind in [
        "uninit_read",
        "dead_store",
        "unreachable",
        "constant_branch",
        "truncation",
    ] {
        assert!(kinds.contains(&kind), "missing {kind} in {diags}");
    }
    // Every diagnostic is fully structured, and lines come back sorted.
    let mut last_line = 0;
    for d in items {
        let line = d.get("line").and_then(Json::as_u64).expect("line");
        assert!(line >= last_line, "diagnostics unsorted: {diags}");
        last_line = line;
        for field in ["severity", "message"] {
            assert!(d.get(field).and_then(Json::as_str).is_some(), "{diags}");
        }
    }
    // An unparsable program is a structured parse error, not a hang.
    let err = client.analyze("int main( {", 8).expect_err("parse fails");
    assert_eq!(err.kind(), Some("parse_error"), "{err:?}");

    // The analyze counter made it to the stats endpoint.
    let stats = client.stats().expect("stats");
    let analyzed = stats
        .get("analysis")
        .and_then(|a| a.get("analyze_requests"))
        .and_then(Json::as_u64)
        .expect("analysis.analyze_requests");
    assert_eq!(analyzed, 1, "parse failures are not analyze requests");
    server.shutdown();
}

#[test]
fn definite_uninit_read_fails_the_build_with_lint_error() {
    let server = Server::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    })
    .expect("server starts");
    let mut client = Client::connect(server.local_addr()).expect("connects");
    // `y` is read by every execution but never written: the encoding would
    // be meaningless, so the build fails fast instead of solving garbage.
    let job = Job::new(
        "int main(int x) {\nint y;\nreturn y;\n}",
        "main",
        JobSpec::ReturnEquals(4),
        vec![vec![3]],
    );
    let err = client.localize(job).expect_err("lint gate fires");
    assert_eq!(err.kind(), Some("lint_error"), "{err:?}");
    server.shutdown();
}

#[test]
fn static_prune_counters_surface_in_stats() {
    let server = Server::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    })
    .expect("server starts");
    let mut client = Client::connect(server.local_addr()).expect("connects");
    // Line 3 computes `w`, which the returned value never depends on: the
    // relevance prune hardens its selector, and the dead store is counted
    // as a lint warning.
    let job = Job::new(
        "int main(int x) {\nint y = x + 2;\nint w = x * 3;\nreturn y;\n}",
        "main",
        JobSpec::ReturnEquals(4),
        vec![vec![3]],
    );
    client.localize(job).expect("localizes");
    let stats = client.stats().expect("stats");
    let analysis = stats.get("analysis").expect("analysis section");
    let pruned = analysis
        .get("lines_pruned")
        .and_then(Json::as_u64)
        .expect("lines_pruned");
    let warnings = analysis
        .get("lint_warnings")
        .and_then(Json::as_u64)
        .expect("lint_warnings");
    assert!(pruned > 0, "the irrelevant line was pruned: {stats}");
    assert!(warnings > 0, "the dead store was counted: {stats}");
    // The per-job counters ride along on last_job too.
    let last = stats.get("last_job").expect("last_job");
    assert!(
        last.get("lines_pruned").and_then(Json::as_u64).unwrap_or(0) > 0,
        "{stats}"
    );
    server.shutdown();
}

/// The `health` wire shape is a contract: fleet routers and operators
/// parse it, so the exact key set (and the `store` sub-object's) is
/// pinned here. Adding a field is an API change that must edit this test.
#[test]
fn health_reports_queue_shed_and_store_status() {
    let server = Server::start(ServiceConfig {
        workers: 1,
        queue_capacity: 4,
        ..ServiceConfig::default()
    })
    .expect("server starts");
    let mut client = Client::connect(server.local_addr()).expect("connects");
    client.localize(mutated_minic_job(1)).expect("localizes");

    let report = client.health_report().expect("health");
    let keys: Vec<&str> = report
        .as_obj()
        .expect("health is an object")
        .iter()
        .map(|(k, _)| k.as_str())
        .collect();
    assert_eq!(
        keys,
        [
            "id",
            "ok",
            "op",
            "status",
            "uptime_ms",
            "workers",
            "queue_depth",
            "queue_capacity",
            "active_lanes",
            "shed",
            "expired",
            "shed_rate",
            "store",
        ],
        "health key set changed — update the fleet/router consumers first"
    );
    let store_keys: Vec<&str> = report
        .get("store")
        .and_then(Json::as_obj)
        .expect("health.store is an object")
        .iter()
        .map(|(k, _)| k.as_str())
        .collect();
    assert_eq!(
        store_keys,
        ["enabled", "restored_entries", "restore_ms", "writes"]
    );

    // Value sanity on a freshly started storeless daemon.
    assert_eq!(report.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(report.get("workers").and_then(Json::as_u64), Some(1));
    assert_eq!(report.get("queue_capacity").and_then(Json::as_u64), Some(4));
    assert_eq!(report.get("queue_depth").and_then(Json::as_u64), Some(0));
    assert_eq!(report.get("active_lanes").and_then(Json::as_u64), Some(0));
    assert_eq!(report.get("shed").and_then(Json::as_u64), Some(0));
    assert_eq!(report.get("expired").and_then(Json::as_u64), Some(0));
    assert_eq!(report.get("shed_rate").and_then(Json::as_f64), Some(0.0));
    let store = report.get("store").expect("store");
    assert_eq!(store.get("enabled").and_then(Json::as_bool), Some(false));
    assert_eq!(store.get("writes").and_then(Json::as_u64), Some(0));
    server.shutdown();
}

/// The client's retry backoff must respect the job's own `deadline_ms`:
/// retrying past the point where the answer could still arrive in budget
/// only burns the caller's time. Against a daemon that hangs up on every
/// attempt, an uncapped 8-retry schedule at 100 ms base would sleep ~25 s;
/// the cap surfaces `deadline_exceeded` within the job's ~250 ms budget.
#[test]
fn client_retries_never_outlive_the_jobs_own_deadline() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("binds");
    let addr = listener.local_addr().expect("addr");
    // Accept and instantly hang up, forever: every attempt is a transport
    // error. The thread dies with the test process.
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            drop(conn);
        }
    });

    let mut client = Client::connect_with(
        addr,
        service::ClientConfig {
            retries: 8,
            retry_base: std::time::Duration::from_millis(100),
            seed: 7,
            ..service::ClientConfig::default()
        },
    )
    .expect("connects");
    let mut job = mutated_minic_job(1);
    job.deadline_ms = Some(250);
    let started = std::time::Instant::now();
    let err = client.localize(job).expect_err("no daemon ever answers");
    let elapsed = started.elapsed();
    assert_eq!(err.kind(), Some("deadline_exceeded"), "{err:?}");
    assert!(
        matches!(&err, ClientError::DeadlineExceeded { last_error } if !last_error.is_empty()),
        "{err:?}"
    );
    assert!(
        elapsed < std::time::Duration::from_secs(5),
        "retry loop blew past the deadline: {elapsed:?}"
    );
}

/// Fair-queuing regression: one greedy tenant flooding distinct cold-build
/// jobs from six connections cannot shed or starve three polite tenants on
/// their own lanes. Polite jobs must all succeed (zero sheds) with a
/// bounded p99, whatever happens to the greedy lane.
#[test]
fn a_greedy_client_cannot_shed_or_starve_the_polite_ones() {
    let server = Server::start(ServiceConfig {
        workers: 1,
        queue_capacity: 16,
        ..ServiceConfig::default()
    })
    .expect("server starts");
    let addr = server.local_addr();

    // The greedy tenant: six connections sharing one client_id, every job
    // a distinct program (a cold build), re-submitting the moment each
    // response lands. Sheds hit only this lane and must say `overloaded`.
    let greedy: Vec<_> = (0..6)
        .map(|t: i64| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connects");
                let mut sheds = 0u64;
                for i in 0..6 {
                    let mut job = mutated_minic_job(1000 + t * 6 + i);
                    job.client_id = Some("greedy".to_string());
                    job.deadline_ms = Some(120_000);
                    match client.localize(job) {
                        Ok(_) => {}
                        Err(err) => {
                            assert_eq!(err.kind(), Some("overloaded"), "{err:?}");
                            sheds += 1;
                        }
                    }
                }
                sheds
            })
        })
        .collect();

    // Three polite tenants: one sequential connection each on their own
    // lane (first job a cold build, the rest cache hits).
    let polite: Vec<_> = (0..3)
        .map(|p: i64| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connects");
                let mut latencies = Vec::new();
                for _ in 0..12 {
                    let mut job = mutated_minic_job(-(10 + p));
                    job.client_id = Some(format!("polite-{p}"));
                    job.deadline_ms = Some(120_000);
                    let started = std::time::Instant::now();
                    client
                        .localize(job)
                        .expect("polite jobs are never shed under a greedy flood");
                    latencies.push(started.elapsed());
                }
                latencies
            })
        })
        .collect();

    let mut latencies: Vec<std::time::Duration> = polite
        .into_iter()
        .flat_map(|h| h.join().expect("polite thread must not panic"))
        .collect();
    let greedy_sheds: u64 = greedy
        .into_iter()
        .map(|h| h.join().expect("greedy thread must not panic"))
        .sum();
    latencies.sort();
    let p99 = latencies[(latencies.len() * 99).div_ceil(100) - 1];
    assert!(
        p99 < std::time::Duration::from_secs(2),
        "polite p99 {p99:?} under greedy flood (greedy sheds: {greedy_sheds})"
    );
    server.shutdown();
}
