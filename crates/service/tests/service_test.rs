//! End-to-end tests of the localization daemon: protocol equivalence with
//! the direct [`bugassist::Localizer`] API, concurrency under a mixed
//! TCAS + mutated-minic workload, forced cache eviction, and graceful
//! shutdown.

use bugassist::Localizer;
use service::protocol::{canonicalize, ranked_to_json, report_to_json};
use service::{Client, ClientError, Job, JobSpec, Json, Server, ServiceConfig};
use siemens::{tcas_trusted_lines, tcas_versions, TCAS_ENTRY, TCAS_SOURCE};
use std::sync::Arc;

/// The canonical (timing-zeroed) serialization the daemon must reproduce
/// byte for byte, computed by running the job directly.
fn expected_canonical(job: &Job) -> String {
    let program = minic::parse_program(&job.program).expect("job program parses");
    let localizer = Localizer::new(
        &program,
        &job.entry,
        &job.bmc_spec(),
        &job.localizer_config(),
    )
    .expect("job encodes");
    if job.inputs.len() == 1 {
        let report = localizer.localize(&job.inputs[0]).expect("localizes");
        canonicalize(&report_to_json(&report)).to_string()
    } else {
        let ranked = localizer
            .localize_batch(&job.inputs)
            .expect("batch localizes");
        canonicalize(&ranked_to_json(&ranked)).to_string()
    }
}

fn canonical(body: &Json) -> String {
    canonicalize(body).to_string()
}

/// A small faulty program family: the base constant on line 2 is mutated
/// per variant, so each variant is a distinct program with a distinct
/// cache entry and a distinct (but deterministic) localization answer.
fn mutated_minic_job(delta: i64) -> Job {
    let base =
        minic::parse_program("int main(int x) {\nint y = x + 2;\nint z = y * 1;\nreturn z;\n}")
            .expect("base parses");
    let mutated = minic::apply_mutation(
        &base,
        &minic::Mutation::BumpConstant {
            line: minic::Line(2),
            occurrence: 0,
            delta,
        },
    )
    .expect("mutation applies");
    // Golden function is x + 1, so inputs where x + 2 + delta != x + 1 fail.
    Job::new(
        minic::pretty_program(&mutated),
        "main",
        JobSpec::ReturnEquals(4),
        vec![vec![3]],
    )
}

/// The TCAS version-1 localize job the paper's Table 1 row starts from.
fn tcas_job(inputs: Vec<Vec<i64>>, golden: i64) -> Job {
    let version = tcas_versions().into_iter().next().expect("v1 exists");
    let faulty = version.build(TCAS_SOURCE);
    let mut job = Job::new(
        minic::pretty_program(&faulty),
        TCAS_ENTRY,
        JobSpec::ReturnEquals(golden),
        inputs,
    );
    job.options.width = 16;
    job.options.unwind = 6;
    job.options.max_inline_depth = 8;
    job.options.max_suspect_sets = 4;
    job.options.trusted_lines = tcas_trusted_lines().iter().map(|l| l.0).collect();
    job
}

/// Failing TCAS v1 vectors sharing one golden output (largest such group).
fn tcas_failing_vectors() -> (Vec<Vec<i64>>, i64) {
    use std::collections::BTreeMap;
    let version = tcas_versions().into_iter().next().expect("v1 exists");
    let faulty = version.build(TCAS_SOURCE);
    let pool = siemens::tcas_test_vectors(300, 2011);
    let interp = siemens::tcas_interp_config();
    let mut by_golden: BTreeMap<i64, Vec<Vec<i64>>> = BTreeMap::new();
    for input in &pool {
        let golden = siemens::tcas_golden_output(input);
        let outcome = bmc::run_program(&faulty, TCAS_ENTRY, input, &[], interp);
        if outcome.result != Some(golden) || !outcome.is_ok() {
            by_golden.entry(golden).or_default().push(input.clone());
        }
    }
    let (&golden, vectors) = by_golden
        .iter()
        .max_by_key(|(_, v)| v.len())
        .expect("v1 has failing vectors");
    assert!(vectors.len() >= 2, "need >= 2 failing vectors");
    (vectors.iter().take(3).cloned().collect(), golden)
}

#[test]
fn concurrent_mixed_workload_matches_direct_localizer() {
    let (tcas_inputs, tcas_golden) = tcas_failing_vectors();
    // The mixed workload: one TCAS job plus three mutated-minic variants.
    let jobs: Vec<Job> = vec![
        tcas_job(vec![tcas_inputs[0].clone()], tcas_golden),
        mutated_minic_job(1),
        mutated_minic_job(2),
        mutated_minic_job(-3),
    ];
    let expected: Arc<Vec<String>> = Arc::new(jobs.iter().map(expected_canonical).collect());
    let jobs = Arc::new(jobs);

    // One shard: all four programs fit without collision evictions, so the
    // hit/miss arithmetic below is exact.
    let server = Server::start(ServiceConfig {
        workers: 4,
        cache_capacity: 8,
        cache_shards: 1,
        queue_capacity: 4,
        ..ServiceConfig::default()
    })
    .expect("server starts");
    let addr = server.local_addr();

    // N client threads hammer the daemon; each thread starts at a different
    // job offset so distinct programs are always in flight simultaneously.
    const CLIENTS: usize = 6;
    const ROUNDS: usize = 3;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let jobs = Arc::clone(&jobs);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connects");
                for round in 0..ROUNDS {
                    for i in 0..jobs.len() {
                        let j = (c + round + i) % jobs.len();
                        let outcome = client.localize(jobs[j].clone()).expect("localizes");
                        assert_eq!(
                            canonical(&outcome.body),
                            expected[j],
                            "client {c} round {round} job {j} got a wrong or \
                             interleaved response"
                        );
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread panicked");
    }

    // 6 clients × 3 rounds × 4 jobs against 4 distinct programs: the
    // single-flight cache builds each program exactly once, every other
    // request is a hit (possibly one that waited on the builder).
    let mut client = Client::connect(addr).expect("connects");
    let stats = client.stats().expect("stats");
    let cache = stats.get("cache").expect("cache section");
    let hits = cache.get("hits").and_then(Json::as_u64).expect("hits");
    let misses = cache.get("misses").and_then(Json::as_u64).expect("misses");
    let entries = cache
        .get("entries")
        .and_then(Json::as_u64)
        .expect("entries");
    assert_eq!(misses, 4, "one single-flight build per distinct program");
    assert_eq!(hits, (CLIENTS * ROUNDS * 4 - 4) as u64);
    assert_eq!(entries, 4, "one entry per distinct program");
    let localized = stats
        .get("requests")
        .and_then(|r| r.get("localize"))
        .and_then(Json::as_u64)
        .expect("localize counter");
    assert_eq!(localized, (CLIENTS * ROUNDS * 4) as u64);
    server.shutdown();
}

#[test]
fn batch_endpoint_is_byte_identical_to_localize_batch() {
    let (tcas_inputs, tcas_golden) = tcas_failing_vectors();
    let tcas = tcas_job(tcas_inputs, tcas_golden);
    let minic_batch = Job {
        inputs: vec![vec![3], vec![5], vec![9]],
        ..mutated_minic_job(1)
    };

    let server = Server::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    })
    .expect("server starts");
    let mut client = Client::connect(server.local_addr()).expect("connects");
    for job in [tcas, minic_batch] {
        let expected = expected_canonical(&job);
        let cold = client.batch(job.clone()).expect("cold batch");
        assert!(!cold.cache_hit);
        assert_eq!(canonical(&cold.body), expected);
        // And again from the warm cache: same bytes, no rebuild.
        let warm = client.batch(job).expect("warm batch");
        assert!(warm.cache_hit);
        assert_eq!(warm.build_ms, 0);
        assert_eq!(canonical(&warm.body), expected);
    }
    server.shutdown();
}

#[test]
fn forced_eviction_with_capacity_one_stays_correct() {
    // Two programs alternating through a one-entry cache: every request
    // evicts the other program's prepared localizer, and answers must stay
    // byte-identical throughout.
    let jobs = Arc::new(vec![mutated_minic_job(1), mutated_minic_job(2)]);
    let expected: Arc<Vec<String>> = Arc::new(jobs.iter().map(expected_canonical).collect());

    let server = Server::start(ServiceConfig {
        workers: 2,
        cache_capacity: 1,
        cache_shards: 1,
        queue_capacity: 2,
        ..ServiceConfig::default()
    })
    .expect("server starts");
    let addr = server.local_addr();

    let handles: Vec<_> = (0..2)
        .map(|c| {
            let jobs = Arc::clone(&jobs);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connects");
                for round in 0..4 {
                    let j = (c + round) % 2;
                    let outcome = client.localize(jobs[j].clone()).expect("localizes");
                    assert_eq!(canonical(&outcome.body), expected[j]);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread panicked");
    }

    let mut client = Client::connect(addr).expect("connects");
    let stats = client.stats().expect("stats");
    let cache = stats.get("cache").expect("cache section");
    assert_eq!(cache.get("capacity").and_then(Json::as_u64), Some(1));
    let evictions = cache
        .get("evictions")
        .and_then(Json::as_u64)
        .expect("evictions");
    assert!(
        evictions >= 2,
        "alternating programs must evict: {evictions}"
    );
    server.shutdown();
}

#[test]
fn health_stats_and_error_paths() {
    let server = Server::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    })
    .expect("server starts");
    let mut client = Client::connect(server.local_addr()).expect("connects");

    // Health answers inline, before any job has run.
    client.health().expect("health");

    // A garbage program is a server-side error, not a hang or a crash.
    let garbage = Job::new("int main( {", "main", JobSpec::Assertions, vec![vec![1]]);
    let err = client.localize(garbage).expect_err("must fail");
    assert!(matches!(err, ClientError::Server(_)), "{err:?}");

    // An arity mismatch travels back as an error string too.
    let wrong_arity = Job::new(
        "int main(int x) { return x; }",
        "main",
        JobSpec::ReturnEquals(0),
        vec![vec![1, 2]],
    );
    let err = client.localize(wrong_arity).expect_err("must fail");
    assert!(matches!(err, ClientError::Server(_)), "{err:?}");

    // The connection survives errors; a good job still works, and the stats
    // endpoint surfaces the per-request solver counters of that job.
    let good = mutated_minic_job(1);
    client.localize(good).expect("localizes after errors");
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats
            .get("requests")
            .and_then(|r| r.get("errors"))
            .and_then(Json::as_u64),
        Some(2)
    );
    let last_job = stats.get("last_job").expect("last_job");
    assert_eq!(last_job.get("op").and_then(Json::as_str), Some("localize"));
    for field in ["reduce_dbs", "arena_bytes", "prepare_ms", "elapsed_ms"] {
        assert!(
            last_job.get(field).and_then(Json::as_u64).is_some(),
            "last_job must carry {field}"
        );
    }
    let solver = stats.get("solver").expect("solver totals");
    assert!(
        solver
            .get("arena_bytes_peak")
            .and_then(Json::as_u64)
            .unwrap()
            > 0
    );
    server.shutdown();
}

#[test]
fn wire_level_raw_lines_work_without_the_client() {
    // Talk to the daemon with nothing but a socket and hand-written JSON:
    // documents (and pins) the wire format the README shows.
    use std::io::{BufRead, BufReader, Write};
    let server = Server::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    })
    .expect("server starts");
    let stream = std::net::TcpStream::connect(server.local_addr()).expect("connects");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;

    writer
        .write_all(
            concat!(
                r#"{"id":7,"op":"localize","program":"int main(int x) {\nint y = x + 2;\nreturn y;\n}","#,
                r#""entry":"main","spec":{"return_equals":4},"inputs":[[5]],"width":8}"#,
                "\n"
            )
            .as_bytes(),
        )
        .expect("writes");
    let mut line = String::new();
    reader.read_line(&mut line).expect("reads");
    let response = Json::parse(line.trim_end()).expect("response parses");
    assert_eq!(response.get("id").and_then(Json::as_i64), Some(7));
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(response.get("cache").and_then(Json::as_str), Some("miss"));
    let lines = response
        .get("report")
        .and_then(|r| r.get("suspect_lines"))
        .and_then(Json::as_arr)
        .expect("suspect lines");
    assert!(
        lines.contains(&Json::Int(2)),
        "line 2 is the bug: {response}"
    );

    // Unparseable request lines get an error response, not a dropped
    // connection.
    writer.write_all(b"this is not json\n").expect("writes");
    let mut line = String::new();
    reader.read_line(&mut line).expect("reads");
    let response = Json::parse(line.trim_end()).expect("response parses");
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    server.shutdown();
}

#[test]
fn shutdown_op_drains_and_stops_the_daemon() {
    let server = Server::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    })
    .expect("server starts");
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connects");
    client.localize(mutated_minic_job(1)).expect("localizes");
    client.shutdown().expect("acknowledged");
    // wait() returns only after the drain completes; afterwards the port
    // no longer accepts work.
    server.wait();
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut late) => {
            assert!(late.health().is_err(), "daemon must be gone");
        }
    }
}
