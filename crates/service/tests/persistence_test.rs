//! End-to-end tests of the persistent prepared-formula store: restart
//! recovery, evict-to-disk coherence, corruption handling, write-through
//! hygiene and the Prometheus metrics exposition.

use service::{Client, Job, JobSpec, Json, Server, ServiceConfig};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A self-deleting scratch directory for store files.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "bugassist-persistence-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self) -> String {
        self.0.to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn store_config(dir: &TempDir) -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        store_dir: Some(dir.path()),
        ..ServiceConfig::default()
    }
}

fn minic_job(delta: i64) -> Job {
    let source = format!("int main(int x) {{\nint y = x + {delta};\nint z = y * 2;\nreturn z;\n}}");
    Job::new(source, "main", JobSpec::ReturnEquals(0), vec![vec![3]])
}

fn canonical(body: &Json) -> String {
    service::protocol::canonicalize(body).to_string()
}

fn store_stat(stats: &Json, field: &str) -> u64 {
    stats
        .get("store")
        .and_then(|s| s.get(field))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats.store.{field} missing: {stats}"))
}

/// Polls `stats` until the store has persisted at least `writes` records
/// (write-through is asynchronous, off the request path).
fn wait_for_writes(client: &mut Client, writes: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = client.stats().expect("stats");
        if store_stat(&stats, "writes") >= writes {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "write-through never persisted {writes} records: {stats}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn restart_recovers_warm_entries_byte_identically() {
    let dir = TempDir::new("restart");
    let jobs = [minic_job(2), minic_job(5)];

    // First daemon lifetime: cold builds, asynchronous write-through.
    let server = Server::start(store_config(&dir)).expect("first daemon");
    let mut expected = Vec::new();
    {
        let mut client = Client::connect(server.local_addr()).expect("connects");
        for job in &jobs {
            let out = client.localize(job.clone()).expect("localizes");
            assert!(!out.cache_hit);
            assert_eq!(out.tier, "built");
            expected.push(canonical(&out.body));
        }
        wait_for_writes(&mut client, jobs.len() as u64);
    }
    server.shutdown();

    // Second daemon lifetime, same directory: restore-on-boot preloads the
    // cache, so the first request per program is already warm — no
    // rebuild, and a byte-identical report.
    let server = Server::start(store_config(&dir)).expect("second daemon");
    let mut client = Client::connect(server.local_addr()).expect("reconnects");
    let stats = client.stats().expect("stats");
    assert_eq!(
        store_stat(&stats, "restored_entries"),
        jobs.len() as u64,
        "restore-on-boot recovers every persisted entry: {stats}"
    );
    assert!(
        stats
            .get("store")
            .and_then(|s| s.get("restore_ms"))
            .is_some(),
        "restore time is surfaced: {stats}"
    );
    assert_eq!(
        stats.get("version").and_then(Json::as_str),
        Some(env!("CARGO_PKG_VERSION")),
        "stats reports the build version: {stats}"
    );
    for (job, expected) in jobs.iter().zip(&expected) {
        let out = client
            .localize(job.clone())
            .expect("localizes post-restart");
        assert!(out.cache_hit, "restored entry serves as a plain cache hit");
        assert_eq!(out.tier, "memory");
        assert_eq!(out.build_ms, 0, "no rebuild after restart");
        assert_eq!(&canonical(&out.body), expected, "byte-identical report");
    }
    server.shutdown();
}

#[test]
fn evicted_entry_is_served_from_the_store_tier() {
    let dir = TempDir::new("evict");
    let config = ServiceConfig {
        workers: 1,
        cache_capacity: 1,
        cache_shards: 1,
        ..store_config(&dir)
    };
    let server = Server::start(config).expect("daemon");
    let mut client = Client::connect(server.local_addr()).expect("connects");

    let first = minic_job(2);
    let cold = client.localize(first.clone()).expect("cold build");
    assert_eq!(cold.tier, "built");
    wait_for_writes(&mut client, 1);

    // A second program evicts the first from the capacity-1 memory tier.
    let evictor = client.localize(minic_job(5)).expect("evicting build");
    assert_eq!(evictor.tier, "built");

    // The evicted entry is still served — from disk, without a rebuild.
    let back = client.localize(first).expect("post-eviction request");
    assert!(!back.cache_hit, "the memory tier genuinely evicted it");
    assert_eq!(back.tier, "store");
    assert_eq!(back.build_ms, 0, "store-served entries never rebuild");
    assert_eq!(canonical(&back.body), canonical(&cold.body));
    let stats = client.stats().expect("stats");
    assert!(store_stat(&stats, "hits") >= 1, "{stats}");
    server.shutdown();
}

#[test]
fn failed_builds_are_never_written_through() {
    let dir = TempDir::new("failed");
    let server = Server::start(store_config(&dir)).expect("daemon");
    let mut client = Client::connect(server.local_addr()).expect("connects");
    // `y` is undeclared: the build fails its typecheck.
    let bad = Job::new(
        "int main(int x) {\nreturn y;\n}",
        "main",
        JobSpec::ReturnEquals(0),
        vec![vec![1]],
    );
    let err = client.localize(bad).expect_err("type error");
    assert_eq!(err.kind(), Some("type_error"), "{err:?}");
    // One good build, so there is a write to wait for — proving the writer
    // thread ran and still never saw the failed build.
    client.localize(minic_job(2)).expect("good build");
    wait_for_writes(&mut client, 1);
    let stats = client.stats().expect("stats");
    assert_eq!(store_stat(&stats, "writes"), 1, "{stats}");
    server.shutdown();
    let records = std::fs::read_dir(&dir.0)
        .expect("store dir")
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .path()
                .extension()
                .is_some_and(|ext| ext == "rec")
        })
        .count();
    assert_eq!(records, 1, "only the successful build reached the disk");
}

/// A build that *panics* poisons its single-flight slot; the poisoned slot
/// must never reach the store either.
#[cfg(feature = "faults")]
#[test]
fn panicked_builds_are_never_written_through() {
    use service::{FaultConfig, FaultPlan};
    use std::sync::Arc;
    let dir = TempDir::new("poisoned");
    let plan = Arc::new(FaultPlan::new(FaultConfig {
        seed: 7,
        build_panic_period: 1, // every build panics
        ..FaultConfig::default()
    }));
    let config = ServiceConfig {
        fault_plan: Some(plan),
        ..store_config(&dir)
    };
    let server = Server::start(config).expect("daemon");
    let mut client = Client::connect(server.local_addr()).expect("connects");
    let err = client.localize(minic_job(2)).expect_err("build panics");
    assert_eq!(err.kind(), Some("internal_error"), "{err:?}");
    let stats = client.stats().expect("stats");
    assert_eq!(store_stat(&stats, "writes"), 0, "{stats}");
    server.shutdown();
    let empty = std::fs::read_dir(&dir.0)
        .expect("store dir")
        .next()
        .is_none();
    assert!(empty, "a poisoned build left a record behind");
}

#[test]
fn corrupt_records_degrade_to_clean_boot_misses() {
    let dir = TempDir::new("corrupt");

    // Record 1: valid framing (magic, CRC) around an undecodable payload.
    let raw = store::Store::open(dir.path()).expect("store opens");
    raw.save(0x1234, 0x5678, b"not a prepared entry")
        .expect("saves");
    // Record 2: a truncated file (torn write).
    std::fs::write(dir.0.join(format!("{:016x}.rec", 0x9999u64)), b"bgast")
        .expect("writes truncated record");
    drop(raw);

    let server = Server::start(store_config(&dir)).expect("daemon boots anyway");
    let mut client = Client::connect(server.local_addr()).expect("connects");
    let stats = client.stats().expect("stats");
    assert_eq!(store_stat(&stats, "restored_entries"), 0, "{stats}");
    assert_eq!(
        store_stat(&stats, "corrupt_records"),
        2,
        "both corruption classes were counted: {stats}"
    );
    // The daemon is fully functional: the corrupt records were misses, not
    // errors, and fresh builds proceed normally.
    let out = client.localize(minic_job(2)).expect("serves normally");
    assert_eq!(out.tier, "built");
    server.shutdown();
}

/// Structural validity: every line is a `# TYPE` comment or a
/// `name[{labels}] value` sample whose name a `# TYPE` declared.
fn assert_valid_prometheus(text: &str) {
    let mut declared = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("type line has a name");
            let kind = parts.next().expect("type line has a kind");
            assert!(
                kind == "counter" || kind == "gauge",
                "unknown metric kind in {line:?}"
            );
            declared.push(name.to_string());
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment {line:?}");
        let (name_part, value) = line.rsplit_once(' ').expect("sample has a value");
        let name = name_part.split('{').next().unwrap();
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "invalid metric name in {line:?}"
        );
        assert!(
            declared.iter().any(|d| d == name),
            "sample {line:?} has no # TYPE declaration"
        );
        assert!(value.parse::<f64>().is_ok(), "unparsable value in {line:?}");
    }
}

#[test]
fn metrics_exposition_is_valid_prometheus_text() {
    let dir = TempDir::new("metrics");
    let server = Server::start(store_config(&dir)).expect("daemon");
    let mut client = Client::connect(server.local_addr()).expect("connects");
    client.localize(minic_job(2)).expect("one request");
    let text = client.metrics().expect("metrics");
    assert_valid_prometheus(&text);

    // Coverage: one representative metric per required family.
    for family in [
        "bugassist_requests_total{op=\"localize\"} 1",
        "bugassist_queue_depth",
        "bugassist_fair_queue_active_lanes",
        "bugassist_fair_queue_max_lane_depth",
        "bugassist_fair_queue_fair_share",
        "bugassist_cache_misses_total 1",
        "bugassist_worker_panics_total 0",
        "bugassist_formula_gates_cached_total",
        "bugassist_analysis_requests_total",
        "bugassist_analysis_lines_pruned_total",
        "bugassist_analysis_lint_warnings_total",
        "bugassist_store_writes_total",
        "bugassist_build_info{version=",
    ] {
        assert!(text.contains(family), "metrics lack {family:?}:\n{text}");
    }
    server.shutdown();
}

/// The fleet client's own exposition goes through the same structural
/// validator: a chaos harness scrapes it next to the per-replica text.
#[test]
fn fleet_metrics_exposition_is_valid_prometheus_text() {
    let dir = TempDir::new("fleet-metrics");
    let server = Server::start(store_config(&dir)).expect("daemon");
    let addr = server.local_addr().to_string();
    let mut fleet = service::FleetClient::new(service::FleetConfig {
        replicas: vec![addr],
        ..service::FleetConfig::default()
    });
    fleet.localize(minic_job(3)).expect("fleet serves");
    fleet.probe();
    let text = fleet.metrics_text();
    assert_valid_prometheus(&text);

    for family in [
        "bugassist_fleet_replicas 1",
        "bugassist_fleet_replicas_up 1",
        "bugassist_fleet_requests_total 1",
        "bugassist_fleet_delivered_total 1",
        "bugassist_fleet_failovers_total 0",
        "bugassist_fleet_down_marks_total 0",
        "bugassist_fleet_served_total{replica=",
    ] {
        assert!(
            text.contains(family),
            "fleet metrics lack {family:?}:\n{text}"
        );
    }
    server.shutdown();
}
