//! Seeded property test of the store payload codec: random straight-line
//! programs prepared under varying widths and pipeline knobs must survive
//! an encode → decode → re-encode round trip byte-identically, and the
//! restored localizer must produce byte-identical localization reports.

use prng::SplitMix64;
use service::persist::{decode_entry, encode_entry};
use service::protocol::{canonicalize, report_to_json};
use service::{Job, JobSpec, PreparedEntry};
use std::sync::Arc;

/// A random straight-line `main(x)` with `stmts` chained assignments over
/// bitwise/arithmetic operators — total by construction, so the concrete
/// interpreter always yields a return value to aim the failing spec at.
fn random_program(rng: &mut SplitMix64, stmts: usize) -> String {
    let ops = ["+", "-", "*", "&", "|", "^"];
    let mut source = String::from("int main(int x) {\nint v0 = x + 1;\n");
    for i in 1..stmts {
        let op = ops[rng.gen_range(0..ops.len() as u64) as usize];
        let prev = rng.gen_range(0..i as u64);
        let constant = 1 + rng.gen_range(0..9);
        source.push_str(&format!("int v{i} = v{prev} {op} {constant};\n"));
    }
    source.push_str(&format!("return v{};\n}}", stmts - 1));
    source
}

#[test]
fn random_prepared_templates_roundtrip_byte_identically() {
    let widths = [6usize, 8, 10, 13];
    let mut rng = SplitMix64::seed_from_u64(0xB06A_5517);
    for case in 0..12 {
        let width = widths[(case % widths.len() as u64) as usize];
        let simplify = rng.gen_range(0..2) == 1;
        let word_passes = rng.gen_range(0..2) == 1;
        let stmts = 2 + rng.gen_range(0..4) as usize;
        let source = random_program(&mut rng, stmts);
        let input = rng.gen_range(0..16) as i64;

        let program = minic::parse_program(&source).expect("generated source parses");
        // Aim the spec at a value the program provably does not return, so
        // the input is a genuine failing test.
        let outcome = bmc::run_program(
            &program,
            "main",
            &[input],
            &[],
            bmc::InterpConfig {
                width,
                ..bmc::InterpConfig::default()
            },
        );
        let actual = outcome.result.expect("straight-line program returns");
        let golden = actual + 1;

        let mut job = Job::new(
            source.clone(),
            "main",
            JobSpec::ReturnEquals(golden),
            vec![vec![input]],
        );
        job.options.width = width;
        job.options.simplify = simplify;
        job.options.word_passes = word_passes;
        let localizer =
            bugassist::Localizer::new(&program, "main", &job.bmc_spec(), &job.localizer_config())
                .expect("generated program encodes");
        localizer.warm();
        let entry = PreparedEntry::new(program, &job, Arc::new(localizer));

        let context = format!(
            "case {case}: width={width} simplify={simplify} \
             word_passes={word_passes}\n{source}"
        );
        let payload = encode_entry(&entry).expect("warm entry encodes");
        let (key, fingerprint, restored) =
            decode_entry(&payload).unwrap_or_else(|e| panic!("{context}\ndecode: {e}"));
        assert_eq!(key, job.cache_key(&entry.program), "{context}");
        assert_eq!(fingerprint, job.options_fingerprint(), "{context}");
        assert_eq!(
            encode_entry(&restored).expect("restored entry re-encodes"),
            payload,
            "re-encode must be byte-identical: {context}"
        );
        assert_eq!(restored.localizer.warm(), 0, "restored warm-from-birth");

        let fresh = entry.localizer.localize(&[input]).expect("fresh localize");
        let back = restored
            .localizer
            .localize(&[input])
            .expect("restored localize");
        assert_eq!(
            canonicalize(&report_to_json(&fresh)).to_string(),
            canonicalize(&report_to_json(&back)).to_string(),
            "restored-vs-fresh reports must be byte-identical: {context}"
        );
    }
}
