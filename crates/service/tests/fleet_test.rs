//! End-to-end tests of fleet-level robustness: rendezvous routing across
//! replicas, transparent failover when a replica crashes mid-stream with
//! byte-identical answers, warm restart through the persistent store, and
//! the one-live-owner-per-`--store-dir` startup guard.

use service::fleet::routing_key;
use service::{Client, FleetClient, FleetConfig, Job, JobSpec, Json, Server, ServiceConfig};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A self-deleting scratch directory for one replica's store files.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "bugassist-fleet-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self) -> String {
        self.0.to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A family of distinct tiny faulty programs: each `delta` is its own
/// program, cache entry and routing key, with a deterministic answer.
fn fleet_job(delta: i64) -> Job {
    let source = format!("int main(int x) {{\nint y = x + {delta};\nint z = y * 2;\nreturn z;\n}}");
    Job::new(source, "main", JobSpec::ReturnEquals(0), vec![vec![3]])
}

fn canonical(body: &Json) -> String {
    service::protocol::canonicalize(body).to_string()
}

fn replica_config(dir: &TempDir) -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        store_dir: Some(dir.path()),
        ..ServiceConfig::default()
    }
}

/// Polls one replica's `health` report until its store has persisted at
/// least `writes` records (write-through is asynchronous).
fn wait_for_store_writes(addr: &str, writes: u64) {
    let mut client = Client::connect(addr).expect("connects for health polling");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let report = client.health_report().expect("health");
        let done = report
            .get("store")
            .and_then(|s| s.get("writes"))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("health.store.writes missing: {report}"));
        if done >= writes {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "write-through never persisted {writes} records: {report}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Rebinds a just-crashed replica's address, retrying briefly: the old
/// listener is closed before `crash()` returns, but the kernel may lag.
fn restart_replica(config: ServiceConfig) -> Server {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match Server::start(config.clone()) {
            Ok(server) => return server,
            Err(e) if e.kind() == std::io::ErrorKind::AddrInUse && Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => panic!("replica restart failed: {e}"),
        }
    }
}

/// The chaos-kill acceptance scenario, in-process: three replicas, one
/// crashed mid-stream. Every job still gets an answer byte-identical to a
/// single reference daemon's, the fleet records the failovers, and the
/// restarted replica comes back warm through its store (`tier:"store"` on
/// the first repeat request, with `restore_on_boot: false`).
#[test]
fn fleet_survives_a_replica_crash_with_byte_identical_answers() {
    let jobs: Vec<Job> = (1..=8).map(fleet_job).collect();

    // Reference: one plain daemon, no store, answers recorded.
    let reference = Server::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    })
    .expect("reference daemon");
    let expected: Vec<String> = {
        let mut client = Client::connect(reference.local_addr()).expect("connects");
        jobs.iter()
            .map(|job| canonical(&client.localize(job.clone()).expect("reference answer").body))
            .collect()
    };
    reference.shutdown();

    // The fleet: three replicas, each with its own store directory.
    let dirs: Vec<TempDir> = (0..3)
        .map(|i| TempDir::new(&format!("chaos-{i}")))
        .collect();
    let mut servers: Vec<Option<Server>> = dirs
        .iter()
        .map(|dir| Some(Server::start(replica_config(dir)).expect("replica starts")))
        .collect();
    let addrs: Vec<String> = servers
        .iter()
        .map(|s| s.as_ref().unwrap().local_addr().to_string())
        .collect();
    let mut fleet = FleetClient::new(FleetConfig {
        replicas: addrs.clone(),
        down_cooldown: Duration::from_millis(200),
        backoff_base: Duration::from_millis(5),
        ..FleetConfig::default()
    });

    // Phase 1: the whole stream lands on its home replicas, byte-identical.
    for (job, want) in jobs.iter().zip(&expected) {
        let out = fleet.localize(job.clone()).expect("fleet answers");
        assert_eq!(&canonical(&out.body), want, "fleet answer diverges");
    }
    assert_eq!(fleet.stats().failovers, 0, "healthy fleet never fails over");

    // The victim is job 0's home. Let its asynchronous write-through land
    // before the crash so the restart below has something to recover.
    let victim = fleet.home_of(routing_key(&jobs[0]));
    let victim_jobs: Vec<&Job> = jobs
        .iter()
        .filter(|job| fleet.home_of(routing_key(job)) == victim)
        .collect();
    assert!(!victim_jobs.is_empty());
    wait_for_store_writes(&addrs[victim], victim_jobs.len() as u64);

    // Chaos: abrupt crash (no graceful drain, no store snapshot).
    servers[victim].take().expect("victim running").crash();

    // Phase 2: the same stream again. Jobs homed on the victim fail over
    // to the next replica in hash order; answers stay byte-identical
    // because every replica computes the same deterministic report.
    for (job, want) in jobs.iter().zip(&expected) {
        let out = fleet
            .localize(job.clone())
            .expect("fleet survives the crash");
        assert_eq!(&canonical(&out.body), want, "failover answer diverges");
    }
    assert!(
        fleet.stats().failovers >= 1,
        "crashing a home replica must record failovers: {:?}",
        fleet.stats()
    );
    assert_eq!(fleet.stats().delivered, 2 * jobs.len() as u64);

    // Probing sees two replicas up and the victim down.
    let reports = fleet.probe();
    assert!(reports[victim].is_none(), "crashed replica must not answer");
    assert_eq!(fleet.replicas_up(), 2);

    // Restart the victim on its old address and store directory. Lazy
    // restore (`restore_on_boot: false`) pins the disk tier: the first
    // repeat request must answer from the store, not a rebuild.
    let restarted = restart_replica(ServiceConfig {
        addr: addrs[victim].clone(),
        restore_on_boot: false,
        ..replica_config(&dirs[victim])
    });
    {
        let mut direct = Client::connect(restarted.local_addr()).expect("connects");
        let out = direct
            .localize(victim_jobs[0].clone())
            .expect("restarted replica answers");
        assert_eq!(
            out.tier, "store",
            "first repeat request after restart must come back warm from the store"
        );
        assert_eq!(&canonical(&out.body), &expected[0], "warm answer diverges");
    }

    // The fleet re-admits it: the next probe clears the down mark and a
    // victim-homed job routes home again.
    let reports = fleet.probe();
    assert!(reports.iter().all(Option::is_some), "all replicas answer");
    assert_eq!(fleet.replicas_up(), 3);
    let served_before = fleet.stats().served_by[victim];
    let out = fleet.localize(victim_jobs[0].clone()).expect("routes home");
    assert_eq!(&canonical(&out.body), &expected[0]);
    assert_eq!(
        fleet.stats().served_by[victim],
        served_before + 1,
        "re-admitted replica serves its own keys again"
    );

    restarted.shutdown();
    for server in servers.into_iter().flatten() {
        server.shutdown();
    }
}

/// Satellite 1: two replicas pointed at the same `--store-dir` is an
/// operator error the second replica must refuse at startup with a
/// structured message, and a graceful shutdown releases the directory.
#[test]
fn a_second_replica_on_the_same_store_dir_is_refused_at_startup() {
    let dir = TempDir::new("shared-store");

    let first = Server::start(replica_config(&dir)).expect("first replica owns the dir");
    let err = Server::start(replica_config(&dir))
        .expect_err("second replica on the same store dir must be refused");
    assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse);
    let message = err.to_string();
    assert!(
        message.contains("locked by live process") && message.contains("--store-dir"),
        "startup error must name the hazard and the fix: {message}"
    );

    // Graceful shutdown releases the lock; the directory is reusable.
    first.shutdown();
    let second = Server::start(replica_config(&dir)).expect("dir reusable after shutdown");
    second.shutdown();
}
