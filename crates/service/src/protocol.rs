//! The newline-delimited JSON wire protocol of the localization service.
//!
//! One request per line, one response per line, both single JSON objects.
//! Eight operations:
//!
//! | `op`        | payload                                  | response payload      |
//! |-------------|------------------------------------------|-----------------------|
//! | `localize`  | a [`Job`] with exactly one failing input | `report`, `key`       |
//! | `revise`    | a [`Job`] + `prev_key` of the pre-edit cache entry | `report`, `key`, `delta`, `reused` |
//! | `batch`     | a [`Job`] with any number of inputs      | `ranked`, `key`       |
//! | `analyze`   | `program` (+ optional `width`)           | `diagnostics`: the static lint findings |
//! | `health`    | —                                        | `status`, `uptime_ms` |
//! | `stats`     | —                                        | cache/queue/solver/store counters |
//! | `metrics`   | —                                        | `text`: the same counters as Prometheus text exposition |
//! | `shutdown`  | —                                        | acknowledgement; daemon drains and exits |
//!
//! `localize`/`batch`/`revise` responses carry `key` — the cache key of the
//! prepared entry that served them. A client in an edit loop passes it back
//! as `prev_key` on its next `revise`, and the daemon diffs the new source
//! against that entry's cached AST segments to reuse whatever the edit left
//! intact (`delta` names the classification, `reused` says whether the
//! bit-blasted preparation was carried over without re-encoding).
//!
//! A `localize` request looks like
//!
//! ```json
//! {"id":1,"op":"localize","program":"int main(int x) {\nint y = x + 2;\nreturn y;\n}",
//!  "entry":"main","spec":{"return_equals":4},"inputs":[[5]],
//!  "width":8,"unwind":8,"max_suspect_sets":16,"granularity":"line",
//!  "strategy":"fu_malik","portfolio":false}
//! ```
//!
//! and a successful response like
//!
//! ```json
//! {"id":1,"ok":true,"op":"localize","cache":"miss","build_ms":3,
//!  "key":12186356943810876601,
//!  "report":{"suspects":[{"lines":[2],"unwindings":[null],"rank":0,"cost":1}],
//!            "suspect_lines":[2],
//!            "stats":{"maxsat_calls":2,"soft_clauses":2,"hard_clauses":133,
//!                     "variables":74,"elapsed_ms":1,"prepare_ms":3,
//!                     "reduce_dbs":0,"arena_bytes":9188}}}
//! ```
//!
//! A `revise` request is a `localize` request plus `"prev_key"` (the `key`
//! of the pre-edit response); its response additionally carries `"delta"`
//! (the edit classification), `"reused"` (pre-edit bit-blast carried over)
//! and `"solved"` (`false` when the answer was served by remapping the
//! remembered pre-edit report instead of re-running MAX-SAT).
//!
//! Failures are `{"id":…,"ok":false,"kind":"…","error":"…"}` — `kind` is a
//! small machine-readable vocabulary (`parse_error`, `type_error`,
//! `encode_error`, `step_budget_exhausted`, `overloaded`,
//! `deadline_exceeded`, `request_too_large`, `shutting_down`,
//! `internal_error`, …), `error` the human-readable message. The `id` is an
//! opaque client-chosen correlation token echoed back verbatim.
//!
//! Jobs may carry `"deadline_ms"`, a wall-clock budget measured from
//! admission: the daemon sheds the job (`kind":"overloaded"`) instead of
//! queueing it past its deadline, and a solve that outlives the budget
//! returns the best report found so far marked `"complete":false`.
//!
//! Everything here is pure data transformation (no I/O), shared by the
//! server, the blocking client, the tests and the load generator — both
//! directions of every message are exercised by the same code, so the two
//! sides cannot drift apart.

use crate::json::Json;
use bmc::{EncodeConfig, Spec};
use bugassist::{
    Granularity, LocalizationReport, LocalizerConfig, LocalizerStats, RankedReport, Suspect,
};
use maxsat::Strategy;
use minic::{ast::Line, StableHasher};
use std::fmt;

/// Default blame granularity / solver knobs for jobs that omit them.
pub const DEFAULT_MAX_SUSPECT_SETS: usize = 16;

/// One localization job: a program, a specification and failing inputs.
#[derive(Clone, Debug, PartialEq)]
pub struct Job {
    /// MinC source text of the program under analysis.
    pub program: String,
    /// Entry function name.
    pub entry: String,
    /// What "correct" means for this program.
    pub spec: JobSpec,
    /// Failing test inputs; `localize` uses exactly one, `batch` any number.
    pub inputs: Vec<Vec<i64>>,
    /// Encoding and solver knobs.
    pub options: JobOptions,
    /// Per-job wall-clock budget in milliseconds, measured from admission.
    /// `None` asks for the server's default (which may be "unlimited"). A
    /// budgeted job is never queued past its deadline (the daemon sheds it
    /// with an `overloaded` error instead) and a solve that outlives it
    /// comes back as an *anytime* report marked `"complete":false` rather
    /// than an error. Deliberately **not** part of [`Job::cache_key`]: the
    /// prepared localizer is deadline-independent.
    pub deadline_ms: Option<u64>,
    /// Optional client identity for per-client fair queuing: jobs sharing a
    /// `client_id` share one queue lane; unidentified traffic shares the
    /// default lane. Like `deadline_ms`, deliberately **not** part of
    /// [`Job::cache_key`] or [`Job::options_fingerprint`] — who asked has
    /// no bearing on the answer, so replicas stay byte-identical and cache
    /// entries are shared across clients.
    pub client_id: Option<String>,
}

impl Job {
    /// A job over the given source with default options.
    pub fn new(
        program: impl Into<String>,
        entry: impl Into<String>,
        spec: JobSpec,
        inputs: Vec<Vec<i64>>,
    ) -> Job {
        Job {
            program: program.into(),
            entry: entry.into(),
            spec,
            inputs,
            options: JobOptions::default(),
            deadline_ms: None,
            client_id: None,
        }
    }

    /// The stable cache key of this job's *prepared localizer*: everything
    /// that affects `Localizer::new` + preparation is mixed in — the
    /// structural [`minic::ast_hash()`](minic::ast_hash()) of the parsed
    /// program, the entry, the
    /// spec, and every option — while the failing inputs are deliberately
    /// left out (one prepared localizer serves any input).
    pub fn cache_key(&self, program: &minic::Program) -> u64 {
        let mut h = StableHasher::new();
        minic::hash_program(&mut h, program);
        h.write_str(&self.entry);
        match self.spec {
            JobSpec::Assertions => h.write_u8(1),
            JobSpec::ReturnEquals(v) => {
                h.write_u8(2);
                h.write_i64(v);
            }
        }
        let o = &self.options;
        h.write_usize(o.width);
        h.write_usize(o.unwind);
        h.write_usize(o.max_inline_depth);
        h.write_u8(match o.granularity {
            Granularity::Line => 1,
            Granularity::StatementInstance => 2,
        });
        h.write_u8(u8::from(o.loop_weighting));
        h.write_u64(o.base_weight);
        h.write_usize(o.max_suspect_sets);
        h.write_u8(match o.strategy {
            Strategy::FuMalik => 1,
            Strategy::LinearSatUnsat => 2,
            Strategy::Portfolio => 3,
        });
        h.write_u8(u8::from(o.portfolio));
        h.write_u8(u8::from(o.gate_cache));
        h.write_u8(u8::from(o.word_passes));
        h.write_u8(u8::from(o.simplify));
        h.write_u8(u8::from(o.static_prune));
        h.write_u8(u8::from(o.static_priors));
        h.write_usize(o.trusted_lines.len());
        for line in &o.trusted_lines {
            h.write_u64(u64::from(*line));
        }
        h.finish()
    }

    /// A stable fingerprint of everything in the cache key *except* the
    /// program: entry, spec and every option. Persistent store records are
    /// keyed by [`Job::cache_key`] and stamped with this fingerprint, so a
    /// record written under one set of options can never satisfy a lookup
    /// made under another even across hashing-scheme changes — the lookup
    /// degrades to a corrupt-record miss instead.
    pub fn options_fingerprint(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_str(&self.entry);
        match self.spec {
            JobSpec::Assertions => h.write_u8(1),
            JobSpec::ReturnEquals(v) => {
                h.write_u8(2);
                h.write_i64(v);
            }
        }
        let o = &self.options;
        h.write_usize(o.width);
        h.write_usize(o.unwind);
        h.write_usize(o.max_inline_depth);
        h.write_u8(match o.granularity {
            Granularity::Line => 1,
            Granularity::StatementInstance => 2,
        });
        h.write_u8(u8::from(o.loop_weighting));
        h.write_u64(o.base_weight);
        h.write_usize(o.max_suspect_sets);
        h.write_u8(match o.strategy {
            Strategy::FuMalik => 1,
            Strategy::LinearSatUnsat => 2,
            Strategy::Portfolio => 3,
        });
        h.write_u8(u8::from(o.portfolio));
        h.write_u8(u8::from(o.gate_cache));
        h.write_u8(u8::from(o.word_passes));
        h.write_u8(u8::from(o.simplify));
        h.write_u8(u8::from(o.static_prune));
        h.write_u8(u8::from(o.static_priors));
        h.write_usize(o.trusted_lines.len());
        for line in &o.trusted_lines {
            h.write_u64(u64::from(*line));
        }
        h.finish()
    }

    /// The [`LocalizerConfig`] these options describe.
    pub fn localizer_config(&self) -> LocalizerConfig {
        let o = &self.options;
        LocalizerConfig {
            encode: EncodeConfig {
                width: o.width,
                unwind: o.unwind,
                max_inline_depth: o.max_inline_depth,
                concretize: Vec::new(),
                gate_cache: o.gate_cache,
                word_passes: o.word_passes,
            },
            strategy: o.strategy,
            max_suspect_sets: o.max_suspect_sets,
            granularity: o.granularity,
            loop_weighting: o.loop_weighting,
            base_weight: o.base_weight,
            trusted_lines: o.trusted_lines.iter().map(|&l| Line(l)).collect(),
            portfolio: o.portfolio,
            simplify: o.simplify,
            static_prune: o.static_prune,
            static_priors: o.static_priors,
        }
    }

    /// The [`Spec`] this job's specification describes.
    pub fn bmc_spec(&self) -> Spec {
        match self.spec {
            JobSpec::Assertions => Spec::Assertions,
            JobSpec::ReturnEquals(v) => Spec::ReturnEquals(v),
        }
    }
}

/// The specification a failing run violates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobSpec {
    /// The program's `assert(...)` statements plus implicit bounds checks.
    Assertions,
    /// The entry function must return this golden output.
    ReturnEquals(i64),
}

/// Encoding and solver options of a [`Job`], mirroring [`LocalizerConfig`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobOptions {
    /// Bit width of the symbolic encoding.
    pub width: usize,
    /// Loop unwinding bound.
    pub unwind: usize,
    /// Maximum function-inlining depth.
    pub max_inline_depth: usize,
    /// Blame granularity.
    pub granularity: Granularity,
    /// Weight soft clauses by loop iteration (Sec. 5.2).
    pub loop_weighting: bool,
    /// Default soft-clause weight.
    pub base_weight: u64,
    /// Maximum CoMSSes enumerated per failing input.
    pub max_suspect_sets: usize,
    /// MAX-SAT strategy.
    pub strategy: Strategy,
    /// Race both strategies per extraction.
    pub portfolio: bool,
    /// Hash-cons structurally identical gates while bit-blasting.
    pub gate_cache: bool,
    /// Run the word-level simplification passes before bit-blasting.
    pub word_passes: bool,
    /// Preprocess the prepared hard clauses (selector-aware simplification).
    pub simplify: bool,
    /// Harden selectors of statically-irrelevant lines before solving.
    pub static_prune: bool,
    /// Weight soft clauses by the static suspiciousness prior.
    pub static_priors: bool,
    /// Line numbers that must never be blamed.
    pub trusted_lines: Vec<u32>,
}

impl Default for JobOptions {
    fn default() -> JobOptions {
        let base = LocalizerConfig::default();
        JobOptions {
            width: 8,
            unwind: base.encode.unwind,
            max_inline_depth: base.encode.max_inline_depth,
            granularity: base.granularity,
            loop_weighting: base.loop_weighting,
            base_weight: base.base_weight,
            max_suspect_sets: DEFAULT_MAX_SUSPECT_SETS,
            strategy: base.strategy,
            portfolio: base.portfolio,
            gate_cache: base.encode.gate_cache,
            word_passes: base.encode.word_passes,
            simplify: base.simplify,
            static_prune: base.static_prune,
            static_priors: base.static_priors,
            trusted_lines: Vec::new(),
        }
    }
}

/// A parsed request line: the client's correlation id plus the operation.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope {
    /// Client-chosen correlation token, echoed back in the response.
    pub id: u64,
    /// The requested operation.
    pub request: Request,
}

/// The operations of the protocol.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Localize one failing input of a job.
    Localize(Job),
    /// Localize one failing input of an *edited* program, delta-preparing
    /// against the cached pre-edit entry identified by `prev_key`.
    Revise {
        /// The job over the edited source.
        job: Job,
        /// `key` from a previous `localize`/`revise`/`batch` response for
        /// the pre-edit version of the program.
        prev_key: u64,
    },
    /// Localize every input of a job and merge into a frequency ranking.
    Batch(Job),
    /// Run the static lint pass over a program and return its structured
    /// diagnostics without encoding or solving anything; never queued.
    Analyze {
        /// MinC source text to lint.
        program: String,
        /// Encoding width the truncation lint checks constants against.
        width: usize,
    },
    /// Liveness probe; never queued.
    Health,
    /// Cache / queue / solver counters; never queued.
    Stats,
    /// The same counters in Prometheus text exposition format; never queued.
    Metrics,
    /// Drain and stop the daemon.
    Shutdown,
}

impl Request {
    /// The `op` string of this request on the wire.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Localize(_) => "localize",
            Request::Revise { .. } => "revise",
            Request::Batch(_) => "batch",
            Request::Analyze { .. } => "analyze",
            Request::Health => "health",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Shutdown => "shutdown",
        }
    }
}

/// Error produced while decoding a message.
#[derive(Clone, Debug, PartialEq)]
pub struct ProtocolError(pub String);

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtocolError {}

fn bad(message: impl Into<String>) -> ProtocolError {
    ProtocolError(message.into())
}

// --- request encoding --------------------------------------------------

fn spec_to_json(spec: JobSpec) -> Json {
    match spec {
        JobSpec::Assertions => Json::str("assertions"),
        JobSpec::ReturnEquals(v) => Json::obj(vec![("return_equals", Json::Int(v))]),
    }
}

fn job_fields(job: &Job, pairs: &mut Vec<(String, Json)>) {
    let o = &job.options;
    let push = |pairs: &mut Vec<(String, Json)>, k: &str, v: Json| {
        pairs.push((k.to_string(), v));
    };
    push(pairs, "program", Json::str(job.program.clone()));
    push(pairs, "entry", Json::str(job.entry.clone()));
    push(pairs, "spec", spec_to_json(job.spec));
    push(
        pairs,
        "inputs",
        Json::Arr(
            job.inputs
                .iter()
                .map(|input| Json::Arr(input.iter().map(|&v| Json::Int(v)).collect()))
                .collect(),
        ),
    );
    push(pairs, "width", Json::from(o.width));
    push(pairs, "unwind", Json::from(o.unwind));
    push(pairs, "max_inline_depth", Json::from(o.max_inline_depth));
    push(
        pairs,
        "granularity",
        Json::str(match o.granularity {
            Granularity::Line => "line",
            Granularity::StatementInstance => "statement_instance",
        }),
    );
    push(pairs, "loop_weighting", Json::Bool(o.loop_weighting));
    push(pairs, "base_weight", Json::from(o.base_weight));
    push(pairs, "max_suspect_sets", Json::from(o.max_suspect_sets));
    push(
        pairs,
        "strategy",
        Json::str(match o.strategy {
            Strategy::FuMalik => "fu_malik",
            Strategy::LinearSatUnsat => "linear_sat_unsat",
            Strategy::Portfolio => "portfolio",
        }),
    );
    push(pairs, "portfolio", Json::Bool(o.portfolio));
    push(pairs, "gate_cache", Json::Bool(o.gate_cache));
    push(pairs, "word_passes", Json::Bool(o.word_passes));
    push(pairs, "simplify", Json::Bool(o.simplify));
    push(pairs, "static_prune", Json::Bool(o.static_prune));
    push(pairs, "static_priors", Json::Bool(o.static_priors));
    push(
        pairs,
        "trusted_lines",
        Json::Arr(
            o.trusted_lines
                .iter()
                .map(|&l| Json::from(u64::from(l)))
                .collect(),
        ),
    );
    if let Some(deadline_ms) = job.deadline_ms {
        push(pairs, "deadline_ms", Json::from(deadline_ms));
    }
    if let Some(client_id) = &job.client_id {
        push(pairs, "client_id", Json::str(client_id.clone()));
    }
}

/// Serializes a request envelope to its wire line (no trailing newline).
pub fn encode_request(envelope: &Envelope) -> String {
    let mut pairs: Vec<(String, Json)> = vec![
        ("id".to_string(), Json::from(envelope.id)),
        ("op".to_string(), Json::str(envelope.request.op())),
    ];
    match &envelope.request {
        Request::Localize(job) | Request::Batch(job) => job_fields(job, &mut pairs),
        Request::Revise { job, prev_key } => {
            job_fields(job, &mut pairs);
            pairs.push(("prev_key".to_string(), Json::from(*prev_key)));
        }
        Request::Analyze { program, width } => {
            pairs.push(("program".to_string(), Json::str(program.clone())));
            pairs.push(("width".to_string(), Json::from(*width)));
        }
        Request::Health | Request::Stats | Request::Metrics | Request::Shutdown => {}
    }
    Json::Obj(pairs).to_string()
}

// --- request decoding --------------------------------------------------

fn parse_spec(value: &Json) -> Result<JobSpec, ProtocolError> {
    match value {
        Json::Str(s) if s == "assertions" => Ok(JobSpec::Assertions),
        Json::Obj(_) => value
            .get("return_equals")
            .and_then(Json::as_i64)
            .map(JobSpec::ReturnEquals)
            .ok_or_else(|| bad("spec object must carry an integer return_equals")),
        _ => Err(bad("spec must be \"assertions\" or {\"return_equals\": N}")),
    }
}

fn parse_usize(value: &Json, field: &str) -> Result<usize, ProtocolError> {
    value
        .as_u64()
        .and_then(|v| usize::try_from(v).ok())
        .ok_or_else(|| bad(format!("{field} must be a non-negative integer")))
}

fn parse_job(value: &Json) -> Result<Job, ProtocolError> {
    let program = value
        .get("program")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing string field program"))?
        .to_string();
    let entry = value
        .get("entry")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing string field entry"))?
        .to_string();
    let spec = parse_spec(value.get("spec").ok_or_else(|| bad("missing field spec"))?)?;
    let inputs_json = value
        .get("inputs")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("missing array field inputs"))?;
    let mut inputs = Vec::with_capacity(inputs_json.len());
    for input in inputs_json {
        let values = input
            .as_arr()
            .ok_or_else(|| bad("each input must be an array of integers"))?;
        inputs.push(
            values
                .iter()
                .map(|v| v.as_i64().ok_or_else(|| bad("inputs must be integers")))
                .collect::<Result<Vec<i64>, ProtocolError>>()?,
        );
    }

    let mut options = JobOptions::default();
    if let Some(v) = value.get("width") {
        options.width = parse_usize(v, "width")?;
    }
    if let Some(v) = value.get("unwind") {
        options.unwind = parse_usize(v, "unwind")?;
    }
    if let Some(v) = value.get("max_inline_depth") {
        options.max_inline_depth = parse_usize(v, "max_inline_depth")?;
    }
    if let Some(v) = value.get("granularity") {
        options.granularity = match v.as_str() {
            Some("line") => Granularity::Line,
            Some("statement_instance") => Granularity::StatementInstance,
            _ => return Err(bad("granularity must be line or statement_instance")),
        };
    }
    if let Some(v) = value.get("loop_weighting") {
        options.loop_weighting = v
            .as_bool()
            .ok_or_else(|| bad("loop_weighting must be a boolean"))?;
    }
    if let Some(v) = value.get("base_weight") {
        options.base_weight = v
            .as_u64()
            .ok_or_else(|| bad("base_weight must be a non-negative integer"))?;
    }
    if let Some(v) = value.get("max_suspect_sets") {
        options.max_suspect_sets = parse_usize(v, "max_suspect_sets")?;
    }
    if let Some(v) = value.get("strategy") {
        options.strategy = match v.as_str() {
            Some("fu_malik") => Strategy::FuMalik,
            Some("linear_sat_unsat") => Strategy::LinearSatUnsat,
            Some("portfolio") => Strategy::Portfolio,
            _ => {
                return Err(bad(
                    "strategy must be fu_malik, linear_sat_unsat or portfolio",
                ))
            }
        };
    }
    if let Some(v) = value.get("portfolio") {
        options.portfolio = v
            .as_bool()
            .ok_or_else(|| bad("portfolio must be a boolean"))?;
    }
    if let Some(v) = value.get("gate_cache") {
        options.gate_cache = v
            .as_bool()
            .ok_or_else(|| bad("gate_cache must be a boolean"))?;
    }
    if let Some(v) = value.get("word_passes") {
        options.word_passes = v
            .as_bool()
            .ok_or_else(|| bad("word_passes must be a boolean"))?;
    }
    if let Some(v) = value.get("simplify") {
        options.simplify = v
            .as_bool()
            .ok_or_else(|| bad("simplify must be a boolean"))?;
    }
    if let Some(v) = value.get("static_prune") {
        options.static_prune = v
            .as_bool()
            .ok_or_else(|| bad("static_prune must be a boolean"))?;
    }
    if let Some(v) = value.get("static_priors") {
        options.static_priors = v
            .as_bool()
            .ok_or_else(|| bad("static_priors must be a boolean"))?;
    }
    if let Some(v) = value.get("trusted_lines") {
        let lines = v
            .as_arr()
            .ok_or_else(|| bad("trusted_lines must be an array"))?;
        options.trusted_lines = lines
            .iter()
            .map(|l| {
                l.as_u64()
                    .and_then(|v| u32::try_from(v).ok())
                    .ok_or_else(|| bad("trusted_lines entries must be line numbers"))
            })
            .collect::<Result<Vec<u32>, ProtocolError>>()?;
    }

    let deadline_ms = match value.get("deadline_ms") {
        None => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or_else(|| bad("deadline_ms must be a non-negative integer"))?,
        ),
    };

    let client_id = match value.get("client_id") {
        None => None,
        Some(v) => Some(
            v.as_str()
                .ok_or_else(|| bad("client_id must be a string"))?
                .to_string(),
        ),
    };

    Ok(Job {
        program,
        entry,
        spec,
        inputs,
        options,
        deadline_ms,
        client_id,
    })
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a [`ProtocolError`] describing the first malformed field.
pub fn parse_request(line: &str) -> Result<Envelope, ProtocolError> {
    let value = Json::parse(line).map_err(|e| bad(e.to_string()))?;
    let id = match value.get("id") {
        None => 0,
        Some(v) => v
            .as_u64()
            .ok_or_else(|| bad("id must be a non-negative integer"))?,
    };
    let op = value
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing string field op"))?;
    let request = match op {
        "localize" => {
            let job = parse_job(&value)?;
            if job.inputs.len() != 1 {
                return Err(bad(format!(
                    "localize takes exactly one input vector, got {}",
                    job.inputs.len()
                )));
            }
            Request::Localize(job)
        }
        "revise" => {
            let job = parse_job(&value)?;
            if job.inputs.len() != 1 {
                return Err(bad(format!(
                    "revise takes exactly one input vector, got {}",
                    job.inputs.len()
                )));
            }
            let prev_key = value
                .get("prev_key")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("revise needs the non-negative integer field prev_key"))?;
            Request::Revise { job, prev_key }
        }
        "batch" => Request::Batch(parse_job(&value)?),
        "analyze" => {
            let program = value
                .get("program")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("missing string field program"))?
                .to_string();
            let width = match value.get("width") {
                None => JobOptions::default().width,
                Some(v) => parse_usize(v, "width")?,
            };
            Request::Analyze { program, width }
        }
        "health" => Request::Health,
        "stats" => Request::Stats,
        "metrics" => Request::Metrics,
        "shutdown" => Request::Shutdown,
        other => return Err(bad(format!("unknown op {other:?}"))),
    };
    Ok(Envelope { id, request })
}

// --- report serialization ----------------------------------------------

fn suspect_to_json(suspect: &Suspect) -> Json {
    Json::obj(vec![
        (
            "lines",
            Json::Arr(
                suspect
                    .lines
                    .iter()
                    .map(|l| Json::from(u64::from(l.0)))
                    .collect(),
            ),
        ),
        (
            "unwindings",
            Json::Arr(
                suspect
                    .unwindings
                    .iter()
                    .map(|u| match u {
                        None => Json::Null,
                        Some(k) => Json::from(*k),
                    })
                    .collect(),
            ),
        ),
        ("rank", Json::from(suspect.rank)),
        ("cost", Json::from(suspect.cost)),
    ])
}

fn stats_to_json(stats: &LocalizerStats) -> Json {
    Json::obj(vec![
        ("maxsat_calls", Json::from(stats.maxsat_calls)),
        ("soft_clauses", Json::from(stats.soft_clauses)),
        ("hard_clauses", Json::from(stats.hard_clauses)),
        ("variables", Json::from(stats.variables)),
        ("elapsed_ms", Json::from(stats.elapsed_ms)),
        ("prepare_ms", Json::from(stats.prepare_ms)),
        ("reduce_dbs", Json::from(stats.reduce_dbs)),
        ("arena_bytes", Json::from(stats.arena_bytes)),
        ("encode_gates_cached", Json::from(stats.encode_gates_cached)),
        (
            "hard_clauses_pre_simplify",
            Json::from(stats.hard_clauses_pre_simplify),
        ),
        ("clauses_subsumed", Json::from(stats.clauses_subsumed)),
        ("vars_eliminated", Json::from(stats.vars_eliminated)),
        ("simplify_ms", Json::from(stats.simplify_ms)),
        ("word_nodes", Json::from(stats.word_nodes)),
        ("word_nodes_folded", Json::from(stats.word_nodes_folded)),
        ("word_cse_hits", Json::from(stats.word_cse_hits)),
        ("bits_narrowed", Json::from(stats.bits_narrowed)),
        ("lines_pruned", Json::from(stats.lines_pruned)),
        ("prune_ms", Json::from(stats.prune_ms)),
        ("lint_warnings", Json::from(stats.lint_warnings)),
    ])
}

/// Serializes a localization report, per-request solver counters included.
pub fn report_to_json(report: &LocalizationReport) -> Json {
    Json::obj(vec![
        (
            "suspects",
            Json::Arr(report.suspects.iter().map(suspect_to_json).collect()),
        ),
        (
            "suspect_lines",
            Json::Arr(
                report
                    .suspect_lines
                    .iter()
                    .map(|l| Json::from(u64::from(l.0)))
                    .collect(),
            ),
        ),
        ("stats", stats_to_json(&report.stats)),
        // `complete` is semantic content, not timing: canonicalize() keeps
        // it, so an anytime report can never be byte-identical to the exact
        // one unless it actually reproduced the full enumeration.
        ("complete", Json::Bool(report.complete)),
    ])
}

/// Serializes a ranked (batch) report.
pub fn ranked_to_json(ranked: &RankedReport) -> Json {
    Json::obj(vec![
        (
            "ranking",
            Json::Arr(
                ranked
                    .ranking
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("line", Json::from(u64::from(r.line.0))),
                            ("count", Json::from(r.count)),
                            ("frequency", Json::Float(r.frequency)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("max_count", Json::from(ranked.max_count)),
        (
            "per_test",
            Json::Arr(ranked.per_test.iter().map(report_to_json).collect()),
        ),
    ])
}

/// Rewrites a report/ranked JSON tree with every timing field (`elapsed_ms`,
/// `prepare_ms`, `simplify_ms`, `prune_ms`) zeroed, leaving all semantic
/// content intact. Serializing
/// the result gives a *canonical* byte string: two runs of the same job —
/// through the daemon or directly through [`bugassist::Localizer`] — must
/// produce identical canonical bytes, which is exactly what the service
/// equivalence tests compare.
pub fn canonicalize(value: &Json) -> Json {
    match value {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .iter()
                .map(|(k, v)| {
                    if k == "elapsed_ms"
                        || k == "prepare_ms"
                        || k == "simplify_ms"
                        || k == "prune_ms"
                    {
                        (k.clone(), Json::Int(0))
                    } else {
                        (k.clone(), canonicalize(v))
                    }
                })
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(canonicalize).collect()),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_job() -> Job {
        let mut job = Job::new(
            "int main(int x) {\nint y = x + 2;\nreturn y;\n}",
            "main",
            JobSpec::ReturnEquals(4),
            vec![vec![5], vec![7]],
        );
        job.options.trusted_lines = vec![3];
        job.options.portfolio = true;
        job
    }

    #[test]
    fn requests_roundtrip() {
        for request in [
            Request::Localize(Job {
                inputs: vec![vec![5]],
                ..sample_job()
            }),
            Request::Localize(Job {
                inputs: vec![vec![5]],
                deadline_ms: Some(1500),
                client_id: Some("tenant-a".to_string()),
                ..sample_job()
            }),
            // prev_key beyond i64::MAX: cache keys are avalanche-mixed u64s,
            // so the wire must carry all 64 bits losslessly.
            Request::Revise {
                job: Job {
                    inputs: vec![vec![5]],
                    ..sample_job()
                },
                prev_key: u64::MAX - 12345,
            },
            Request::Batch(sample_job()),
            Request::Analyze {
                program: "int main(int x) {\nint y;\nreturn y;\n}".to_string(),
                width: 16,
            },
            Request::Health,
            Request::Stats,
            Request::Metrics,
            Request::Shutdown,
        ] {
            let envelope = Envelope { id: 42, request };
            let line = encode_request(&envelope);
            assert!(!line.contains('\n'), "wire lines must be single lines");
            let parsed = parse_request(&line).expect("round-trips");
            assert_eq!(parsed, envelope);
        }
    }

    #[test]
    fn omitted_options_take_defaults() {
        let line = r#"{"op":"localize","program":"int main(int x) { return x; }","entry":"main","spec":"assertions","inputs":[[1]]}"#;
        let envelope = parse_request(line).expect("parses");
        assert_eq!(envelope.id, 0);
        let Request::Localize(job) = envelope.request else {
            panic!("wrong op");
        };
        assert_eq!(job.options, JobOptions::default());
        assert_eq!(job.spec, JobSpec::Assertions);
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for line in [
            "not json",
            r#"{"op":"explode"}"#,
            r#"{"op":"localize"}"#,
            r#"{"op":"localize","program":"p","entry":"main","spec":"assertions","inputs":[[1],[2]]}"#,
            r#"{"op":"localize","program":"p","entry":"main","spec":"bogus","inputs":[[1]]}"#,
            r#"{"op":"localize","program":"p","entry":"main","spec":"assertions","inputs":[[1]],"strategy":"zchaff"}"#,
            r#"{"op":"batch","program":"p","entry":"main","spec":"assertions","inputs":[["x"]]}"#,
            // revise without prev_key, and with too many inputs.
            r#"{"op":"revise","program":"p","entry":"main","spec":"assertions","inputs":[[1]]}"#,
            r#"{"op":"revise","program":"p","entry":"main","spec":"assertions","inputs":[[1],[2]],"prev_key":3}"#,
        ] {
            assert!(parse_request(line).is_err(), "should reject: {line}");
        }
    }

    #[test]
    fn cache_key_separates_programs_options_and_specs() {
        let job = sample_job();
        let program = minic::parse_program(&job.program).unwrap();
        let base = job.cache_key(&program);

        // Same job, re-parsed program with different formatting: same key.
        let noisy =
            minic::parse_program("int main( int x ) {\nint y = x+2; // c\nreturn y;\n}").unwrap();
        assert_eq!(job.cache_key(&noisy), base);

        // Inputs are not part of the key: one prepared localizer serves all.
        let mut other_inputs = job.clone();
        other_inputs.inputs = vec![vec![99]];
        assert_eq!(other_inputs.cache_key(&program), base);

        // Neither is the deadline: the prepared localizer is budget-blind,
        // so a budgeted retry of the same job hits the same entry.
        let mut budgeted = job.clone();
        budgeted.deadline_ms = Some(250);
        assert_eq!(budgeted.cache_key(&program), base);

        // Nor the client identity: who asked has no bearing on the answer,
        // so every tenant (and every fleet replica) shares one entry.
        let mut identified = job.clone();
        identified.client_id = Some("tenant-a".to_string());
        assert_eq!(identified.cache_key(&program), base);
        assert_eq!(identified.options_fingerprint(), job.options_fingerprint());

        // Any option, entry or spec change must change the key.
        let mut width = job.clone();
        width.options.width = 16;
        let mut spec = job.clone();
        spec.spec = JobSpec::Assertions;
        let mut gran = job.clone();
        gran.options.granularity = Granularity::StatementInstance;
        let mut unwind = job.clone();
        unwind.options.unwind += 1;
        let mut prune = job.clone();
        prune.options.static_prune = !prune.options.static_prune;
        let mut priors = job.clone();
        priors.options.static_priors = !priors.options.static_priors;
        for changed in [&width, &spec, &gran, &unwind, &prune, &priors] {
            assert_ne!(changed.cache_key(&program), base);
        }
    }

    #[test]
    fn options_fingerprint_ignores_program_but_not_options() {
        let job = sample_job();
        let base = job.options_fingerprint();

        // A different program, same options: same fingerprint (the program
        // is covered by the store key, not the fingerprint).
        let mut other_program = job.clone();
        other_program.program = "int main(int x) { return x; }".to_string();
        assert_eq!(other_program.options_fingerprint(), base);

        // Inputs and deadline are not part of the prepared formula either.
        let mut other_inputs = job.clone();
        other_inputs.inputs = vec![vec![99]];
        other_inputs.deadline_ms = Some(100);
        assert_eq!(other_inputs.options_fingerprint(), base);

        // Entry, spec and every option change the fingerprint.
        let mut entry = job.clone();
        entry.entry = "other".to_string();
        let mut spec = job.clone();
        spec.spec = JobSpec::Assertions;
        let mut width = job.clone();
        width.options.width = 16;
        let mut simplify = job.clone();
        simplify.options.simplify = !simplify.options.simplify;
        let mut trusted = job.clone();
        trusted.options.trusted_lines = vec![];
        let mut prune = job.clone();
        prune.options.static_prune = !prune.options.static_prune;
        let mut priors = job.clone();
        priors.options.static_priors = !priors.options.static_priors;
        for changed in [&entry, &spec, &width, &simplify, &trusted, &prune, &priors] {
            assert_ne!(changed.options_fingerprint(), base);
        }
    }

    #[test]
    fn canonicalize_zeroes_only_timing() {
        let value = Json::parse(
            r#"{"stats":{"elapsed_ms":12,"prepare_ms":3,"prune_ms":7,"maxsat_calls":2,"lines_pruned":4},"nested":[{"prepare_ms":9}]}"#,
        )
        .unwrap();
        let canonical = canonicalize(&value);
        assert_eq!(
            canonical.to_string(),
            r#"{"stats":{"elapsed_ms":0,"prepare_ms":0,"prune_ms":0,"maxsat_calls":2,"lines_pruned":4},"nested":[{"prepare_ms":0}]}"#
        );
    }

    #[test]
    fn job_config_mirrors_options() {
        let job = sample_job();
        let config = job.localizer_config();
        assert_eq!(config.encode.width, 8);
        assert_eq!(config.trusted_lines, vec![Line(3)]);
        assert!(config.portfolio);
        assert_eq!(config.max_suspect_sets, DEFAULT_MAX_SUSPECT_SETS);
        assert!(matches!(job.bmc_spec(), Spec::ReturnEquals(4)));
    }
}
