//! # service — localization as a service
//!
//! BugAssist-style error localization is *repeated* work: a CI fleet or an
//! IDE plugin localizes the same program over and over with different
//! failing tests, and almost the entire cost of each request — parse,
//! typecheck, unroll/inline, bit-blast, selector-template construction — is
//! input-independent. This crate turns the workspace's [`bugassist`] engine
//! into a long-lived daemon that pays that cost **once per distinct
//! program** and serves every later request straight from a prepared
//! in-memory formula.
//!
//! The pieces (each in its own module, std-only — no external crates):
//!
//! * [`json`] — a hand-rolled JSON value/parser/serializer for the wire
//!   format (the workspace builds without registry access, so no `serde`);
//! * [`protocol`] — the newline-delimited request/response protocol:
//!   `localize`, `revise`, `batch`, `health`, `stats`, `shutdown`, plus the
//!   stable job [cache key](protocol::Job::cache_key) built on
//!   [`minic::ast_hash()`](minic::ast_hash());
//! * [`queue`] — a bounded `Mutex` + `Condvar` MPMC job queue with
//!   per-client deficit-round-robin lanes; a lane at its fair share blocks
//!   (or sheds) only that client, so overload turns into per-tenant TCP
//!   backpressure instead of unbounded buffering;
//! * [`cache`] — the sharded LRU [`cache::PreparedCache`] of
//!   [`cache::PreparedEntry`]s (warmed [`bugassist::Localizer`]s plus the
//!   program's diffable AST segments and remembered reports) behind `Arc`,
//!   shared lock-free by concurrent requests for the same program;
//! * [`persist`] — the codec between [`cache::PreparedEntry`] and the
//!   opaque CRC-checked records of the `store` crate, giving the cache a
//!   disk-backed second tier that survives daemon restarts (write-through
//!   is asynchronous, restore-on-boot is best-effort, corruption degrades
//!   to a miss);
//! * [`server`] — `TcpListener` + fixed worker-thread pool + graceful
//!   drain-then-exit shutdown (with store snapshot);
//! * [`client`] — the blocking client library used by the tests and the
//!   `loadgen` benchmark;
//! * [`fleet`] — rendezvous-hash routing of jobs across N replicas with
//!   health probing and transparent failover, so the service survives a
//!   replica dying mid-stream with byte-identical answers.
//!
//! The `revise` op is what turns the daemon into an **interactive-loop
//! backend**: a client that edits its program re-submits with the previous
//! response's `key`, the server classifies the edit against the cached AST
//! segments ([`minic::delta`]), and — for edits that provably cannot change
//! the trace formula (blank lines, comments, dead-code tweaks) — reuses the
//! bit-blasted preparation *and* serves the pre-edit report with its blame
//! lines remapped, skipping the MAX-SAT solve entirely. Semantic edits fall
//! back to a full rebuild (warm-started in portfolio mode), so every
//! `revise` answer is byte-identical to what a cold `localize` of the same
//! source would return.
//!
//! # Example
//!
//! ```
//! use service::{Client, Job, JobSpec, Server, ServiceConfig};
//!
//! let server = Server::start(ServiceConfig {
//!     workers: 2,
//!     ..ServiceConfig::default()
//! })
//! .unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//!
//! // The constant on line 2 is wrong: main(5) returns 7, not the golden 4.
//! let job = Job::new(
//!     "int main(int x) {\nint y = x + 2;\nreturn y;\n}",
//!     "main",
//!     JobSpec::ReturnEquals(4),
//!     vec![vec![5]],
//! );
//! let cold = client.localize(job.clone()).unwrap();
//! assert!(!cold.cache_hit);
//! let warm = client.localize(job).unwrap();
//! assert!(warm.cache_hit, "second request reuses the prepared formula");
//! // Identical answers modulo timing fields.
//! use service::protocol::canonicalize;
//! assert_eq!(canonicalize(&cold.body), canonicalize(&warm.body));
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod client;
pub mod faults;
pub mod fleet;
pub mod json;
pub mod persist;
pub mod protocol;
pub mod queue;
pub mod server;

pub use cache::{CacheStats, PreparedCache, PreparedEntry};
pub use client::{Client, ClientConfig, ClientError, Outcome, ReviseOutcome};
pub use faults::{FaultConfig, FaultPlan};
pub use fleet::{FleetClient, FleetConfig, FleetStats};
pub use json::{Json, JsonError};
pub use protocol::{Envelope, Job, JobOptions, JobSpec, ProtocolError, Request};
pub use queue::{JobQueue, PushError, TryPushError};
pub use server::{Server, ServiceConfig};
