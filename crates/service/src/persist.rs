//! The prepared-entry codec for the persistent store.
//!
//! `crates/store` moves opaque CRC-checked byte strings; this module owns
//! what those bytes *mean* for the localization service: a complete
//! [`PreparedEntry`] — the job's source text, entry, spec and options, the
//! bit-blasted [`bmc::SymbolicTrace`] and the warm
//! [`bugassist::PreparedTemplate`] (simplified CNF template, selector map,
//! model reconstruction). A decoded record rebuilds a warm-from-birth
//! localizer without touching the encoder or the simplifier, which is the
//! entire point: restore-on-boot pays parse + typecheck only (~100x cheaper
//! than a cold build) and the first post-restart request solves immediately.
//!
//! Determinism note: [`encode_entry`] of a freshly built entry and of its
//! own decoded image produce identical bytes (everything serialized is
//! either input data or deterministic derived data), so write-through after
//! a store-served build is a harmless idempotent rewrite.
//!
//! Payload integrity beyond the store's CRC: [`decode_entry`] re-derives
//! the cache key and options fingerprint from the decoded fields and hands
//! them back, so the server can cross-check them against the record's
//! header — a payload pasted under the wrong filename decodes but then
//! fails that comparison and is treated as corrupt.

use crate::cache::PreparedEntry;
use crate::protocol::{Job, JobOptions, JobSpec};
use bugassist::{Granularity, Localizer, PreparedTemplate};
use maxsat::Strategy;
use sat::bytes::{ByteReader, ByteWriter, DecodeError};
use std::sync::Arc;

/// Version byte of the payload layout inside a store record. Bumping
/// [`store::FORMAT_VERSION`] invalidates records wholesale at the framing
/// layer; this byte exists so a payload-only layout change can do the same
/// without a store format bump. Version 2 added the `static_prune` /
/// `static_priors` option bytes.
pub const PAYLOAD_VERSION: u8 = 2;

/// Serializes a warm prepared entry into a store payload, or `None` when
/// the entry's localizer was never warmed (nothing worth persisting).
pub fn encode_entry(entry: &PreparedEntry) -> Option<Vec<u8>> {
    let template = entry.localizer.export_prepared()?;
    let mut w = ByteWriter::new();
    w.write_u8(PAYLOAD_VERSION);
    w.write_str(&entry.source);
    w.write_str(&entry.entry);
    match entry.spec {
        JobSpec::Assertions => w.write_u8(1),
        JobSpec::ReturnEquals(v) => {
            w.write_u8(2);
            w.write_u64(v as u64);
        }
    }
    let o = &entry.options;
    w.write_usize(o.width);
    w.write_usize(o.unwind);
    w.write_usize(o.max_inline_depth);
    w.write_u8(match o.granularity {
        Granularity::Line => 1,
        Granularity::StatementInstance => 2,
    });
    w.write_u8(u8::from(o.loop_weighting));
    w.write_u64(o.base_weight);
    w.write_usize(o.max_suspect_sets);
    w.write_u8(match o.strategy {
        Strategy::FuMalik => 1,
        Strategy::LinearSatUnsat => 2,
        Strategy::Portfolio => 3,
    });
    w.write_u8(u8::from(o.portfolio));
    w.write_u8(u8::from(o.gate_cache));
    w.write_u8(u8::from(o.word_passes));
    w.write_u8(u8::from(o.simplify));
    w.write_u8(u8::from(o.static_prune));
    w.write_u8(u8::from(o.static_priors));
    w.write_usize(o.trusted_lines.len());
    for line in &o.trusted_lines {
        w.write_u32(*line);
    }
    entry.localizer.trace().encode_bytes(&mut w);
    template.encode(&mut w);
    Some(w.into_bytes())
}

/// The options fingerprint a store record for this entry must carry:
/// [`Job::options_fingerprint`] recomputed from the entry's own job fields.
pub fn entry_fingerprint(entry: &PreparedEntry) -> u64 {
    let mut job = Job::new(
        entry.source.clone(),
        entry.entry.clone(),
        entry.spec,
        Vec::new(),
    );
    job.options = entry.options.clone();
    job.options_fingerprint()
}

fn decode_bool(r: &mut ByteReader<'_>, field: &str) -> Result<bool, DecodeError> {
    match r.read_u8()? {
        0 => Ok(false),
        1 => Ok(true),
        b => Err(DecodeError::new(format!("bad {field} byte {b}"))),
    }
}

/// Deserializes a store payload back into a warm prepared entry, returning
/// it together with the cache key and options fingerprint re-derived from
/// the decoded fields (for the caller to check against the record header).
///
/// # Errors
///
/// Returns a [`DecodeError`] on any truncation, malformed field, or a
/// source text that no longer parses — the caller treats all of these as a
/// corrupt record (count + delete), never as a failure.
pub fn decode_entry(payload: &[u8]) -> Result<(u64, u64, PreparedEntry), DecodeError> {
    let mut r = ByteReader::new(payload);
    let version = r.read_u8()?;
    if version != PAYLOAD_VERSION {
        return Err(DecodeError::new(format!(
            "unsupported payload version {version}"
        )));
    }
    let source = r.read_str()?.to_string();
    let entry_fn = r.read_str()?.to_string();
    let spec = match r.read_u8()? {
        1 => JobSpec::Assertions,
        2 => JobSpec::ReturnEquals(r.read_u64()? as i64),
        t => return Err(DecodeError::new(format!("bad spec tag {t}"))),
    };
    let width = r.read_usize()?;
    let unwind = r.read_usize()?;
    let max_inline_depth = r.read_usize()?;
    let granularity = match r.read_u8()? {
        1 => Granularity::Line,
        2 => Granularity::StatementInstance,
        t => return Err(DecodeError::new(format!("bad granularity tag {t}"))),
    };
    let loop_weighting = decode_bool(&mut r, "loop_weighting")?;
    let base_weight = r.read_u64()?;
    let max_suspect_sets = r.read_usize()?;
    let strategy = match r.read_u8()? {
        1 => Strategy::FuMalik,
        2 => Strategy::LinearSatUnsat,
        3 => Strategy::Portfolio,
        t => return Err(DecodeError::new(format!("bad strategy tag {t}"))),
    };
    let portfolio = decode_bool(&mut r, "portfolio")?;
    let gate_cache = decode_bool(&mut r, "gate_cache")?;
    let word_passes = decode_bool(&mut r, "word_passes")?;
    let simplify = decode_bool(&mut r, "simplify")?;
    let static_prune = decode_bool(&mut r, "static_prune")?;
    let static_priors = decode_bool(&mut r, "static_priors")?;
    let num_trusted = r.read_len(4)?;
    let mut trusted_lines = Vec::with_capacity(num_trusted);
    for _ in 0..num_trusted {
        trusted_lines.push(r.read_u32()?);
    }
    let options = JobOptions {
        width,
        unwind,
        max_inline_depth,
        granularity,
        loop_weighting,
        base_weight,
        max_suspect_sets,
        strategy,
        portfolio,
        gate_cache,
        word_passes,
        simplify,
        static_prune,
        static_priors,
        trusted_lines,
    };
    let trace = bmc::SymbolicTrace::decode_bytes(&mut r)?;
    let template = PreparedTemplate::decode(&mut r)?;
    if !r.is_empty() {
        return Err(DecodeError::new(format!(
            "{} trailing bytes after payload",
            r.remaining()
        )));
    }

    let program = minic::parse_program(&source)
        .map_err(|e| DecodeError::new(format!("stored source no longer parses: {e}")))?;
    let mut job = Job::new(source, entry_fn, spec, Vec::new());
    job.options = options;
    let key = job.cache_key(&program);
    let fingerprint = job.options_fingerprint();
    let localizer = Localizer::from_restored(
        trace,
        template,
        &job.entry,
        &job.bmc_spec(),
        &job.localizer_config(),
        &program,
    );
    let entry = PreparedEntry::new(program, &job, Arc::new(localizer));
    Ok((key, fingerprint, entry))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmc::Spec;

    fn warm_entry(source: &str, spec: JobSpec, simplify: bool) -> PreparedEntry {
        let mut job = Job::new(source, "main", spec, vec![vec![5]]);
        job.options.simplify = simplify;
        let program = minic::parse_program(source).unwrap();
        let bmc_spec = match spec {
            JobSpec::Assertions => Spec::Assertions,
            JobSpec::ReturnEquals(v) => Spec::ReturnEquals(v),
        };
        let localizer =
            Localizer::new(&program, "main", &bmc_spec, &job.localizer_config()).unwrap();
        localizer.warm();
        PreparedEntry::new(program, &job, Arc::new(localizer))
    }

    #[test]
    fn cold_entry_has_nothing_to_encode() {
        let source = "int main(int x) {\nint y = x + 2;\nreturn y;\n}";
        let job = Job::new(source, "main", JobSpec::ReturnEquals(4), vec![vec![5]]);
        let program = minic::parse_program(source).unwrap();
        let localizer = Localizer::new(
            &program,
            "main",
            &Spec::ReturnEquals(4),
            &job.localizer_config(),
        )
        .unwrap();
        let entry = PreparedEntry::new(program, &job, Arc::new(localizer));
        assert!(encode_entry(&entry).is_none(), "never-warmed entry");
    }

    #[test]
    fn roundtrip_restores_a_warm_equivalent_entry() {
        let source = "int main(int x) {\nint y = x + 2;\nreturn y;\n}";
        let entry = warm_entry(source, JobSpec::ReturnEquals(4), true);
        let payload = encode_entry(&entry).expect("warm entry encodes");
        let (key, fingerprint, restored) = decode_entry(&payload).expect("decodes");

        // Key and fingerprint match what the original job would compute.
        let mut job = Job::new(source, "main", JobSpec::ReturnEquals(4), vec![]);
        job.options.simplify = true;
        assert_eq!(key, job.cache_key(&entry.program));
        assert_eq!(fingerprint, job.options_fingerprint());

        // The restored localizer is warm (no preparation on first use) and
        // produces a byte-identical canonical report.
        assert_eq!(restored.localizer.warm(), 0, "restored warm-from-birth");
        let fresh = entry.localizer.localize(&[5]).unwrap();
        let back = restored.localizer.localize(&[5]).unwrap();
        let canonical = |r: &bugassist::LocalizationReport| {
            crate::protocol::canonicalize(&crate::protocol::report_to_json(r)).to_string()
        };
        assert_eq!(canonical(&fresh), canonical(&back));
    }

    #[test]
    fn reencode_of_a_decoded_entry_is_byte_identical() {
        let source = "int main(int x) {\nint y = x * 3;\nassert(y != 9);\nreturn y;\n}";
        let entry = warm_entry(source, JobSpec::Assertions, true);
        let payload = encode_entry(&entry).unwrap();
        let (_, _, restored) = decode_entry(&payload).unwrap();
        let payload_again = encode_entry(&restored).unwrap();
        assert_eq!(payload, payload_again);
    }

    #[test]
    fn truncated_and_garbled_payloads_error_cleanly() {
        let source = "int main(int x) {\nint y = x + 2;\nreturn y;\n}";
        let entry = warm_entry(source, JobSpec::ReturnEquals(4), false);
        let payload = encode_entry(&entry).unwrap();
        for cut in [0, 1, 5, payload.len() / 2, payload.len() - 1] {
            assert!(decode_entry(&payload[..cut]).is_err(), "cut at {cut}");
        }
        let mut garbled = payload.clone();
        garbled[0] = 99; // unknown payload version
        assert!(decode_entry(&garbled).is_err());
        let mut trailing = payload.clone();
        trailing.push(0);
        assert!(decode_entry(&trailing).is_err());
    }
}
