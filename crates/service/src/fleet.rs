//! Fleet-level robustness: content-addressed routing across replicas with
//! transparent failover.
//!
//! One daemon process is a single point of failure no matter how gracefully
//! it sheds load. This module scales the service *out*: a [`FleetClient`]
//! spreads jobs across N independent replicas (each its own process, port
//! and `--store-dir`) and survives any one of them dying mid-stream.
//!
//! # Rendezvous hashing
//!
//! Routing is **content-addressed**: a job's [routing key](routing_key) is
//! a stable hash of its program text and options fingerprint, and
//! [`route`] orders the replicas by rendezvous (highest-random-weight)
//! score for that key. The first replica in the order is the job's *home*;
//! repeat requests for the same program therefore always land on the same
//! replica, whose prepared-formula cache is already warm. Rendezvous
//! hashing gives minimal disruption for free: when a replica leaves, only
//! the keys homed on it move (to their second choice) — every other key's
//! order is unchanged, so no warm cache is abandoned.
//!
//! # Failover
//!
//! When the home replica is unreachable, resets mid-request, or sheds the
//! job (`overloaded` / `shutting_down`), the client fails over to the next
//! replica in the key's hash order — after the first pass with a jittered
//! exponential backoff, so a brown-out does not get hammered in lockstep
//! by every client. Deterministic errors (a parse error, an arity
//! mismatch) are **not** failed over: every replica runs the same
//! deterministic solver, so a second opinion would cost a rebuild and
//! return the identical answer. For the same reason the reports a fleet
//! delivers are byte-identical to a single daemon's — routing chooses
//! *where* the job runs, never *what* it answers.
//!
//! A replica that failed is marked down for a cooldown and skipped by
//! later requests until the cooldown lapses (or a [health
//! probe](FleetClient::probe) sees it answer again) — without the mark,
//! every request homed on a dead replica would pay a full connect timeout
//! before failing over.

use crate::client::{Client, ClientConfig, ClientError, Outcome};
use crate::json::Json;
use crate::protocol::Job;
use minic::StableHasher;
use prng::SplitMix64;
use std::time::{Duration, Instant};

/// The content-addressed routing key of a job: a stable hash of the
/// program text and the options fingerprint — everything that decides
/// *which prepared formula* serves the job, nothing that doesn't (inputs,
/// deadline, client identity). Jobs that share a prepared formula share a
/// home replica, so the fleet concentrates warmth instead of diluting it
/// N ways.
pub fn routing_key(job: &Job) -> u64 {
    let mut h = StableHasher::new();
    h.write_str(&job.program);
    h.write_u64(job.options_fingerprint());
    h.finish()
}

/// Rendezvous (highest-random-weight) score of one replica for one key.
fn rendezvous_score(replica: &str, key: u64) -> u64 {
    let mut h = StableHasher::new();
    h.write_str(replica);
    h.write_u64(key);
    h.finish()
}

/// Replica indices ordered by rendezvous score for `key`, best first. The
/// first entry is the key's home; the rest are its failover order. Scoring
/// hashes the replica *address string*, not its index, so reordering or
/// extending the replica list never remaps keys whose home stays listed.
pub fn route(replicas: &[String], key: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..replicas.len()).collect();
    // Ties (astronomically unlikely) break on the address string so the
    // order stays deterministic across clients.
    order.sort_by_key(|&i| (std::cmp::Reverse(rendezvous_score(&replicas[i], key)), i));
    order
}

/// Configuration of a [`FleetClient`].
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Replica addresses, e.g. `["127.0.0.1:7001", "127.0.0.1:7002"]`.
    /// Order is irrelevant to routing (addresses are hashed, not indexed).
    pub replicas: Vec<String>,
    /// Per-replica transport knobs. The fleet layer owns failover *across*
    /// replicas; per-replica `retries` here govern how hard one replica is
    /// tried before the fleet moves on (0 = fail over immediately).
    pub client: ClientConfig,
    /// How long a failed replica is skipped before requests try it again.
    pub down_cooldown: Duration,
    /// Base of the jittered exponential backoff between failover passes:
    /// pass `n` (n ≥ 1) sleeps `backoff_base * 2^(n-1)` plus up to one
    /// `backoff_base` of jitter. The first pass never sleeps — failover to
    /// a healthy replica should cost milliseconds, not a backoff.
    pub backoff_base: Duration,
    /// Seed of the jitter stream (deterministic failover in tests).
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            replicas: Vec::new(),
            client: ClientConfig::default(),
            down_cooldown: Duration::from_millis(500),
            backoff_base: Duration::from_millis(25),
            seed: 0,
        }
    }
}

/// Counters a chaos harness (and [`FleetClient::metrics_text`]) reads.
#[derive(Clone, Debug, Default)]
pub struct FleetStats {
    /// Jobs submitted through this client.
    pub requests: u64,
    /// Jobs that ultimately got an answer (possibly after failover).
    pub delivered: u64,
    /// Attempts that moved on to another replica after a retryable
    /// failure. One request can count several failovers.
    pub failovers: u64,
    /// Times a replica was marked down (entered its cooldown).
    pub down_marks: u64,
    /// Health probes answered, summed over replicas.
    pub probes_ok: u64,
    /// Jobs served per replica, indexed like `FleetConfig::replicas`.
    pub served_by: Vec<u64>,
}

/// One replica's client-side state inside a [`FleetClient`].
#[derive(Debug)]
struct Replica {
    addr: String,
    /// Lazily dialed, dropped on any failure so the next attempt redials.
    connection: Option<Client>,
    /// While set and in the future, the replica is skipped.
    down_until: Option<Instant>,
}

/// A client that routes jobs across a fleet of replicas by rendezvous
/// hashing and transparently fails over when a replica is down or
/// shedding. Single-threaded like [`Client`]: open one per thread.
#[derive(Debug)]
pub struct FleetClient {
    replicas: Vec<Replica>,
    config: FleetConfig,
    jitter: SplitMix64,
    stats: FleetStats,
}

impl FleetClient {
    /// Builds a fleet client. Connections are dialed lazily, so this never
    /// blocks — a fleet where every replica is still booting is fine.
    ///
    /// # Panics
    ///
    /// Panics if `config.replicas` is empty: a fleet of zero replicas can
    /// route nothing, and failing per-request would just defer the panic.
    pub fn new(config: FleetConfig) -> FleetClient {
        assert!(
            !config.replicas.is_empty(),
            "a fleet needs at least one replica address"
        );
        let replicas = config
            .replicas
            .iter()
            .map(|addr| Replica {
                addr: addr.clone(),
                connection: None,
                down_until: None,
            })
            .collect::<Vec<_>>();
        let served_by = vec![0; replicas.len()];
        let jitter = SplitMix64::seed_from_u64(config.seed);
        FleetClient {
            replicas,
            config,
            jitter,
            stats: FleetStats {
                served_by,
                ..FleetStats::default()
            },
        }
    }

    /// The replica addresses, in configuration order.
    pub fn replica_addrs(&self) -> Vec<String> {
        self.replicas.iter().map(|r| r.addr.clone()).collect()
    }

    /// The counters so far.
    pub fn stats(&self) -> &FleetStats {
        &self.stats
    }

    /// Index of the replica a job with this `key` is homed on right now.
    pub fn home_of(&self, key: u64) -> usize {
        let addrs: Vec<String> = self.replicas.iter().map(|r| r.addr.clone()).collect();
        route(&addrs, key)[0]
    }

    /// `true` while the replica's down-cooldown has not lapsed.
    fn is_down(replica: &Replica) -> bool {
        replica
            .down_until
            .is_some_and(|until| Instant::now() < until)
    }

    /// Marks a replica down and drops its (possibly broken) connection.
    fn mark_down(&mut self, index: usize) {
        self.replicas[index].connection = None;
        self.replicas[index].down_until = Some(Instant::now() + self.config.down_cooldown);
        self.stats.down_marks += 1;
    }

    /// Runs `op` against replica `index`, dialing first if needed.
    fn on_replica<T>(
        &mut self,
        index: usize,
        op: impl FnOnce(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        if self.replicas[index].connection.is_none() {
            let client = Client::connect_with(
                self.replicas[index].addr.as_str(),
                self.config.client.clone(),
            )?;
            self.replicas[index].connection = Some(client);
        }
        op(self.replicas[index]
            .connection
            .as_mut()
            .expect("connection just dialed"))
    }

    /// Whether an error is worth trying on another replica. Transport
    /// failures and load sheds are — another replica may well answer.
    /// Deterministic server errors are not: replicas run the same solver,
    /// so the answer would be identical. A blown client-side deadline is
    /// final either way.
    fn retryable(error: &ClientError) -> bool {
        match error {
            ClientError::Io(_) => true,
            // A malformed/truncated response line usually means the peer
            // died mid-write; a healthy replica never produces one.
            ClientError::Protocol(_) => true,
            ClientError::Server { kind, .. } => kind == "overloaded" || kind == "shutting_down",
            ClientError::DeadlineExceeded { .. } => false,
        }
    }

    /// Routes one job: home replica first, then the rest of its hash order,
    /// for up to `passes` passes with jittered exponential backoff between
    /// passes. Replicas inside their down-cooldown are skipped on the first
    /// pass but retried on later passes (they are the only hope left).
    fn call_routed<T>(
        &mut self,
        key: u64,
        mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        const PASSES: u32 = 3;
        let addrs: Vec<String> = self.replicas.iter().map(|r| r.addr.clone()).collect();
        let order = route(&addrs, key);
        self.stats.requests += 1;
        let mut last_error: Option<ClientError> = None;
        for pass in 0..PASSES {
            if pass > 0 {
                let base = self.config.backoff_base;
                let jitter_ms = if base.as_millis() == 0 {
                    0
                } else {
                    self.jitter.gen_range(0..=base.as_millis() as u64)
                };
                std::thread::sleep(
                    base * 2u32.saturating_pow(pass - 1) + Duration::from_millis(jitter_ms),
                );
            }
            for &index in &order {
                if pass == 0 && Self::is_down(&self.replicas[index]) {
                    continue;
                }
                match self.on_replica(index, &mut op) {
                    Ok(value) => {
                        self.replicas[index].down_until = None;
                        self.stats.delivered += 1;
                        self.stats.served_by[index] += 1;
                        return Ok(value);
                    }
                    Err(err) if Self::retryable(&err) => {
                        self.mark_down(index);
                        self.stats.failovers += 1;
                        last_error = Some(err);
                    }
                    Err(err) => return Err(err),
                }
            }
        }
        Err(last_error.unwrap_or_else(|| {
            ClientError::Protocol("no replica was eligible for the request".to_string())
        }))
    }

    /// Localizes `job` on its home replica, failing over down the key's
    /// hash order when the home is dead or shedding. The report is
    /// byte-identical to a single daemon's answer (modulo timing fields):
    /// replicas are deterministic and routing never changes the job.
    ///
    /// # Errors
    ///
    /// The last replica's error once every pass is exhausted, or
    /// immediately for non-retryable (deterministic) errors.
    pub fn localize(&mut self, job: Job) -> Result<Outcome, ClientError> {
        let key = routing_key(&job);
        self.call_routed(key, move |client| client.localize(job.clone()))
    }

    /// Batch-localizes `job` with the same routing and failover as
    /// [`FleetClient::localize`].
    ///
    /// # Errors
    ///
    /// See [`FleetClient::localize`].
    pub fn batch(&mut self, job: Job) -> Result<Outcome, ClientError> {
        let key = routing_key(&job);
        self.call_routed(key, move |client| client.batch(job.clone()))
    }

    /// Health-probes every replica. A replica that answers has its down
    /// mark cleared (no waiting out the cooldown); one that fails is
    /// marked down. Returns each replica's full health report (`None` for
    /// the unreachable ones), indexed like the configured addresses.
    pub fn probe(&mut self) -> Vec<Option<Json>> {
        (0..self.replicas.len())
            .map(
                |index| match self.on_replica(index, Client::health_report) {
                    Ok(report) => {
                        self.replicas[index].down_until = None;
                        self.stats.probes_ok += 1;
                        Some(report)
                    }
                    Err(_) => {
                        self.mark_down(index);
                        None
                    }
                },
            )
            .collect()
    }

    /// Number of replicas currently *not* marked down.
    pub fn replicas_up(&self) -> usize {
        self.replicas.iter().filter(|r| !Self::is_down(r)).count()
    }

    /// The fleet's client-side counters in Prometheus text exposition
    /// format — same shape as the daemon's own `metrics` op, with a
    /// `bugassist_fleet_` prefix, ready for a scraper sidecar.
    pub fn metrics_text(&self) -> String {
        use std::fmt::Write as _;
        let mut text = String::new();
        let mut metric = |name: &str, kind: &str, value: u64| {
            let _ = writeln!(text, "# TYPE {name} {kind}");
            let _ = writeln!(text, "{name} {value}");
        };
        metric(
            "bugassist_fleet_replicas",
            "gauge",
            self.replicas.len() as u64,
        );
        metric(
            "bugassist_fleet_replicas_up",
            "gauge",
            self.replicas_up() as u64,
        );
        metric(
            "bugassist_fleet_requests_total",
            "counter",
            self.stats.requests,
        );
        metric(
            "bugassist_fleet_delivered_total",
            "counter",
            self.stats.delivered,
        );
        metric(
            "bugassist_fleet_failovers_total",
            "counter",
            self.stats.failovers,
        );
        metric(
            "bugassist_fleet_down_marks_total",
            "counter",
            self.stats.down_marks,
        );
        let _ = writeln!(text, "# TYPE bugassist_fleet_served_total counter");
        for (replica, served) in self.replicas.iter().zip(&self.stats.served_by) {
            let _ = writeln!(
                text,
                "bugassist_fleet_served_total{{replica=\"{}\"}} {served}",
                replica.addr
            );
        }
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:7000")).collect()
    }

    #[test]
    fn routing_is_deterministic_and_covers_the_fleet() {
        let replicas = addrs(3);
        let mut homed = vec![0u64; 3];
        for key in 0..600u64 {
            let order = route(&replicas, key);
            assert_eq!(order, route(&replicas, key), "same key, same order");
            // Every order is a permutation of all replicas.
            let mut seen = order.clone();
            seen.sort_unstable();
            assert_eq!(seen, vec![0, 1, 2]);
            homed[order[0]] += 1;
        }
        // Rendezvous spreads homes roughly evenly; a degenerate hash would
        // pile everything on one replica.
        for &count in &homed {
            assert!((100..=300).contains(&count), "skewed homes: {homed:?}");
        }
    }

    #[test]
    fn removing_a_replica_only_remaps_its_own_keys() {
        // The minimal-disruption property that makes rendezvous hashing
        // worth having over `key % n`: dropping replica C moves only the
        // keys homed on C (to their second choice); everyone else keeps
        // their warm home.
        let full = addrs(3);
        let survivors = full[..2].to_vec();
        for key in 0..400u64 {
            let before = route(&full, key);
            let after = route(&survivors, key);
            if before[0] == 2 {
                // Homed on the removed replica: falls to its second choice.
                assert_eq!(after[0], before[1], "key {key} must fail to #2");
            } else {
                assert_eq!(after[0], before[0], "key {key} must not move");
            }
        }
    }

    #[test]
    fn routing_hashes_addresses_not_indices() {
        // Reordering the replica list must not remap anything: the score
        // depends on the address string alone.
        let forward = addrs(3);
        let mut reversed = forward.clone();
        reversed.reverse();
        for key in 0..200u64 {
            let home_fwd = &forward[route(&forward, key)[0]];
            let home_rev = &reversed[route(&reversed, key)[0]];
            assert_eq!(home_fwd, home_rev);
        }
    }

    #[test]
    fn routing_key_is_content_addressed() {
        let mut job = Job::new(
            "int main(int x) {\nreturn x;\n}",
            "main",
            crate::JobSpec::Assertions,
            vec![vec![1]],
        );
        let base = routing_key(&job);
        // Inputs, deadline and identity never move a job off its warm home.
        job.inputs = vec![vec![2], vec![3]];
        job.deadline_ms = Some(100);
        job.client_id = Some("tenant".to_string());
        assert_eq!(routing_key(&job), base);
        // The program and the options do.
        let mut other_program = job.clone();
        other_program.program = "int main(int x) {\nreturn x + 1;\n}".to_string();
        assert_ne!(routing_key(&other_program), base);
        let mut other_options = job;
        other_options.options.width = 16;
        assert_ne!(routing_key(&other_options), base);
    }
}
