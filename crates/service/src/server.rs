//! The localization daemon: `TcpListener`, connection threads, a fixed
//! worker pool behind the bounded job queue, and graceful shutdown.
//!
//! ```text
//!  clients ──TCP──▶ acceptor ──▶ connection threads (1/conn, read lines)
//!                                     │ health/stats/shutdown: answered inline
//!                                     ▼ localize/batch/revise
//!                               JobQueue (bounded, Mutex+Condvar)  ◀─ backpressure
//!                                     ▼
//!                               worker pool (N threads)
//!                                     │ PreparedCache lookup / build+warm
//!                                     │   (revise: diff vs cached segments,
//!                                     │    relabel-reuse or rebuild)
//!                                     │ Localizer::localize / localize_batch
//!                                     │   (or remap the pre-edit report)
//!                                     ▼
//!                               reply channel ──▶ connection thread ──▶ client
//! ```
//!
//! * **One response line per request line**, written by the connection's own
//!   thread — responses to one connection are never interleaved, whatever
//!   the worker pool is doing.
//! * **Backpressure**: when `queue_capacity` jobs are in flight the
//!   connection thread blocks in [`JobQueue::push`] and stops reading its
//!   socket; the kernel's TCP window does the rest.
//! * **Graceful shutdown** (the `shutdown` op or [`Server::shutdown`]):
//!   the queue closes, workers drain every accepted job, open sockets are
//!   shut down to unblock readers, and every thread is joined — no accepted
//!   request is ever dropped without a response.

use crate::cache::{PreparedCache, PreparedEntry};
use crate::faults::FaultPlan;
use crate::json::Json;
use crate::persist;
use crate::protocol::{parse_request, ranked_to_json, report_to_json, Envelope, Job, Request};
use crate::queue::{JobQueue, TryPushError};
use bugassist::{Budget, LocalizationReport, Localizer};
use minic::ast::Line;
use minic::{EditClass, LineMap};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Address to bind, e.g. `127.0.0.1:0` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads executing localization jobs.
    pub workers: usize,
    /// Total capacity of the prepared-localizer cache, in entries.
    pub cache_capacity: usize,
    /// Number of independently locked cache shards.
    pub cache_shards: usize,
    /// Bound of the job queue; pushes beyond it block (backpressure).
    pub queue_capacity: usize,
    /// Deadline applied to jobs that don't carry their own `deadline_ms`.
    /// `None` (the default) keeps such jobs unbudgeted — the legacy
    /// blocking-backpressure behaviour.
    pub default_deadline_ms: Option<u64>,
    /// Upper clamp on any job's deadline; a client asking for more gets
    /// this much. `None` = no clamp.
    pub max_deadline_ms: Option<u64>,
    /// Conflict cap handed to every budgeted solve (per MAX-SAT strategy
    /// worker). `None` = unlimited.
    pub conflict_cap: Option<u64>,
    /// Maximum accepted request-line length in bytes; longer lines get a
    /// structured `request_too_large` error and the connection is closed.
    /// Jobs ship whole programs inline, so the default (1 MiB) is generous.
    pub max_request_bytes: usize,
    /// Socket read timeout per connection. `None` (default) lets idle
    /// clients sit forever; set it to bound how long a wedged or trickling
    /// client can pin a connection thread.
    pub read_timeout_ms: Option<u64>,
    /// Socket write timeout per connection: bounds how long a client that
    /// stopped draining its socket can block a response write.
    pub write_timeout_ms: Option<u64>,
    /// Deterministic fault-injection plan (chaos testing). Hooks are free
    /// unless the `faults` cargo feature is enabled; see [`crate::faults`].
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Directory of the persistent prepared-formula store (`crates/store`).
    /// `None` (the default) disables the disk tier entirely. When set, the
    /// daemon restores every valid record into the in-memory cache on boot,
    /// writes fresh builds through asynchronously, and snapshots the cache
    /// back to the store on graceful shutdown.
    pub store_dir: Option<String>,
    /// Whether boot eagerly restores every store record into the in-memory
    /// cache (the default). With `false` the disk tier is consulted lazily,
    /// per request — a restarted replica's first hit for a previously-seen
    /// program then answers with `tier:"store"`, which is what the fleet
    /// chaos scenario pins; large stores also boot faster this way.
    pub restore_on_boot: bool,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ServiceConfig {
            addr: "127.0.0.1:0".to_string(),
            workers,
            cache_capacity: 64,
            cache_shards: 8,
            queue_capacity: 2 * workers,
            default_deadline_ms: None,
            max_deadline_ms: None,
            conflict_cap: None,
            max_request_bytes: 1 << 20,
            read_timeout_ms: None,
            write_timeout_ms: None,
            fault_plan: None,
            store_dir: None,
            restore_on_boot: true,
        }
    }
}

/// Snapshot of the most recently completed job's solver counters, surfaced
/// verbatim by the stats endpoint.
#[derive(Clone, Debug)]
struct LastJob {
    op: &'static str,
    cache: &'static str,
    /// Delta classification of the preparation (revise jobs; "-" otherwise).
    delta: &'static str,
    reduce_dbs: u64,
    arena_bytes: u64,
    prepare_ms: u128,
    build_ms: u128,
    elapsed_ms: u128,
    /// Formula-diet counters of the served localizer (gate-cache hits while
    /// bit-blasting; variables/clauses the CNF preprocessor removed).
    encode_gates_cached: u64,
    vars_eliminated: u64,
    clauses_subsumed: u64,
    simplify_ms: u128,
    /// Word-level pre-bit-blast counters of the served localizer.
    word_nodes_folded: u64,
    word_cse_hits: u64,
    bits_narrowed: u64,
    /// Static-analysis counters of the served localizer.
    lines_pruned: u64,
    prune_ms: u128,
    lint_warnings: u64,
}

/// Which queued operation a job performs.
#[derive(Clone, Copy, Debug)]
enum JobKind {
    /// One failing input, one report.
    Localize,
    /// Many failing inputs, one merged ranking.
    Batch,
    /// One failing input over an edited program, delta-prepared against the
    /// cached pre-edit entry.
    Revise {
        /// Cache key of the pre-edit entry.
        prev_key: u64,
    },
}

/// One queued localization job plus the channel its response goes back on.
#[derive(Debug)]
struct QueuedJob {
    id: u64,
    kind: JobKind,
    job: Job,
    /// Absolute wall-clock deadline (admission time + effective
    /// `deadline_ms`), `None` for unbudgeted jobs. Checked again at
    /// dequeue: a job whose deadline passed while queued is answered with
    /// `deadline_exceeded` instead of solved.
    deadline: Option<Instant>,
    reply: mpsc::Sender<String>,
}

/// What the write-through channel carries: the cache key and the freshly
/// built entry (encoding happens on the writer thread, off the request
/// path).
type StoreWrite = (u64, Arc<PreparedEntry>);

#[derive(Debug)]
struct ServerState {
    cache: PreparedCache,
    /// The disk-backed second cache tier; `None` when no `store_dir` was
    /// configured.
    store: Option<Arc<store::Store>>,
    /// Feeds freshly built entries to the asynchronous write-through
    /// thread. Shutdown `take()`s (and drops) the sender so the writer
    /// drains its backlog and exits.
    store_writer: Mutex<Option<mpsc::Sender<StoreWrite>>>,
    queue: JobQueue<QueuedJob>,
    started: Instant,
    shutdown: AtomicBool,
    /// The bound address, so shutdown can wake the blocking accept loop
    /// with a throwaway connection.
    local_addr: SocketAddr,
    workers: usize,
    /// Budget / robustness knobs, copied from the [`ServiceConfig`].
    default_deadline_ms: Option<u64>,
    max_deadline_ms: Option<u64>,
    conflict_cap: Option<u64>,
    max_request_bytes: usize,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    faults: Option<Arc<FaultPlan>>,
    /// EWMA of job execution wall-clock (milliseconds), feeding the
    /// admission controller's queue-wait estimate.
    avg_exec_ms: AtomicU64,
    /// Deadline jobs rejected at admission (queue full, or the estimated
    /// queue wait already exceeded the job's whole budget).
    jobs_shed: AtomicU64,
    /// Jobs whose deadline expired while queued (answered, not solved).
    jobs_expired: AtomicU64,
    /// Set by [`ServerState::crash_abrupt`]: an injected replica crash.
    /// A crashed daemon must not snapshot its cache on [`Server::wait`] —
    /// a real crash gets no goodbye write.
    crashed: AtomicBool,
    /// Worker panics converted into `internal_error` responses.
    worker_panics: AtomicU64,
    localize_requests: AtomicU64,
    revise_requests: AtomicU64,
    /// Revise requests whose delta-prepare reused the pre-edit bit-blast
    /// (relabel paths + already-cached revisions) instead of re-encoding.
    revise_reuses: AtomicU64,
    /// Revise requests answered by remapping/replaying a remembered report
    /// instead of running the MAX-SAT enumeration.
    revise_solve_skips: AtomicU64,
    batch_requests: AtomicU64,
    error_responses: AtomicU64,
    total_reduce_dbs: AtomicU64,
    arena_bytes_peak: AtomicU64,
    /// Formula-diet totals over all solved jobs (cache builds included via
    /// their first solve): gate-cache hits and preprocessor removals.
    total_gates_cached: AtomicU64,
    total_vars_eliminated: AtomicU64,
    total_clauses_subsumed: AtomicU64,
    /// Word-level pre-bit-blast totals over all solved jobs.
    total_word_nodes_folded: AtomicU64,
    total_word_cse_hits: AtomicU64,
    total_bits_narrowed: AtomicU64,
    /// Static-analysis totals: `analyze` requests answered, soft selectors
    /// hardened by the relevance prune, lint warnings observed.
    analyze_requests: AtomicU64,
    total_lines_pruned: AtomicU64,
    total_lint_warnings: AtomicU64,
    last_job: Mutex<Option<LastJob>>,
    /// Number of live connection threads, with a condvar for shutdown to
    /// wait on (connection threads are detached, never joined).
    connections: Mutex<usize>,
    connections_done: Condvar,
    /// Reader halves of open connections, so shutdown can unblock them.
    streams: Mutex<Vec<(u64, TcpStream)>>,
}

impl ServerState {
    /// Starts the graceful shutdown sequence: flag set, queue closed (the
    /// workers drain what was accepted), acceptor woken out of its blocking
    /// `accept` by a throwaway connection. Idempotent; used by both the
    /// wire `shutdown` op and [`Server::trigger_shutdown`].
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
        let _ = TcpStream::connect(self.local_addr);
    }

    /// An injected replica crash: like [`ServerState::begin_shutdown`] but
    /// *abrupt* — every open connection is severed immediately (clients see
    /// a reset mid-request, exactly what a killed process looks like from
    /// the wire) and no graceful snapshot will follow. The store's lock
    /// file is released explicitly because in-process chaos tests restart
    /// the "crashed" replica under the same PID: a real crash leaves a
    /// stale lock that the restart breaks via its dead PID, which a
    /// same-process test cannot simulate.
    fn crash_abrupt(&self) {
        self.crashed.store(true, Ordering::SeqCst);
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
        // Hang up the write-through channel without the cache snapshot.
        self.store_writer
            .lock()
            .expect("store_writer poisoned")
            .take();
        for (_, stream) in self.streams.lock().expect("streams poisoned").iter() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        if let Some(store) = &self.store {
            store.unlock();
        }
        let _ = TcpStream::connect(self.local_addr);
    }

    fn error_line(&self, id: u64, kind: &'static str, message: impl std::fmt::Display) -> String {
        self.error_responses.fetch_add(1, Ordering::Relaxed);
        Json::obj(vec![
            ("id", Json::from(id)),
            ("ok", Json::Bool(false)),
            ("kind", Json::str(kind)),
            ("error", Json::str(message.to_string())),
        ])
        .to_string()
    }

    /// The machine-readable `kind` of a prepared-cache build error. Builds
    /// run behind a single-flight slot and can only report a `String`, so
    /// every build error is prefixed at its source (`parse error: …`,
    /// `type error: …`, `lint error: …`, `encode error: …`,
    /// `internal error: …`) and classified here — the one place the
    /// mapping lives.
    fn build_error_kind(message: &str) -> &'static str {
        if message.starts_with("parse error") {
            "parse_error"
        } else if message.starts_with("type error") {
            "type_error"
        } else if message.starts_with("lint error") {
            "lint_error"
        } else if message.starts_with("encode error") {
            "encode_error"
        } else if message.starts_with("internal error") {
            "internal_error"
        } else {
            "error"
        }
    }

    fn localize_error_kind(error: &bugassist::LocalizeError) -> &'static str {
        match error {
            bugassist::LocalizeError::Encode(_) => "encode_error",
            bugassist::LocalizeError::ArityMismatch { .. } => "arity_mismatch",
        }
    }

    /// The `health` wire response. Beyond liveness it carries the load
    /// signals a fleet router needs to avoid a struggling replica — queue
    /// depth/capacity, active fair-queue lanes, shed/expired totals and the
    /// shed *rate* (sheds per admission attempt) — plus the store tier's
    /// status so a restarted replica can be seen coming back warm. The
    /// shape is pinned by `health_reports_queue_shed_and_store_status`.
    fn health_line(&self, id: u64) -> String {
        let shed = self.jobs_shed.load(Ordering::Relaxed);
        let attempts = self.queue.enqueued() + shed;
        let shed_rate = if attempts == 0 {
            0.0
        } else {
            shed as f64 / attempts as f64
        };
        let store = self.store.as_ref().map(|s| s.stats()).unwrap_or_default();
        Json::obj(vec![
            ("id", Json::from(id)),
            ("ok", Json::Bool(true)),
            ("op", Json::str("health")),
            ("status", Json::str("ok")),
            ("uptime_ms", Json::from(self.started.elapsed().as_millis())),
            ("workers", Json::from(self.workers)),
            ("queue_depth", Json::from(self.queue.depth())),
            ("queue_capacity", Json::from(self.queue.capacity())),
            ("active_lanes", Json::from(self.queue.active_lanes())),
            ("shed", Json::from(shed)),
            (
                "expired",
                Json::from(self.jobs_expired.load(Ordering::Relaxed)),
            ),
            ("shed_rate", Json::Float(shed_rate)),
            (
                "store",
                Json::obj(vec![
                    ("enabled", Json::Bool(self.store.is_some())),
                    ("restored_entries", Json::from(store.restored_entries)),
                    ("restore_ms", Json::from(store.restore_ms)),
                    ("writes", Json::from(store.writes)),
                ]),
            ),
        ])
        .to_string()
    }

    fn stats_line(&self, id: u64) -> String {
        let cache = self.cache.stats();
        let store = self.store.as_ref().map(|s| s.stats()).unwrap_or_default();
        let last_job = match &*self.last_job.lock().expect("last_job poisoned") {
            None => Json::Null,
            Some(last) => Json::obj(vec![
                ("op", Json::str(last.op)),
                ("cache", Json::str(last.cache)),
                ("delta", Json::str(last.delta)),
                ("reduce_dbs", Json::from(last.reduce_dbs)),
                ("arena_bytes", Json::from(last.arena_bytes)),
                ("prepare_ms", Json::from(last.prepare_ms)),
                ("build_ms", Json::from(last.build_ms)),
                ("elapsed_ms", Json::from(last.elapsed_ms)),
                ("encode_gates_cached", Json::from(last.encode_gates_cached)),
                ("vars_eliminated", Json::from(last.vars_eliminated)),
                ("clauses_subsumed", Json::from(last.clauses_subsumed)),
                ("simplify_ms", Json::from(last.simplify_ms)),
                ("word_nodes_folded", Json::from(last.word_nodes_folded)),
                ("word_cse_hits", Json::from(last.word_cse_hits)),
                ("bits_narrowed", Json::from(last.bits_narrowed)),
                ("lines_pruned", Json::from(last.lines_pruned)),
                ("prune_ms", Json::from(last.prune_ms)),
                ("lint_warnings", Json::from(last.lint_warnings)),
            ]),
        };
        Json::obj(vec![
            ("id", Json::from(id)),
            ("ok", Json::Bool(true)),
            ("op", Json::str("stats")),
            ("uptime_ms", Json::from(self.started.elapsed().as_millis())),
            ("version", Json::str(env!("CARGO_PKG_VERSION"))),
            (
                "requests",
                Json::obj(vec![
                    (
                        "localize",
                        Json::from(self.localize_requests.load(Ordering::Relaxed)),
                    ),
                    (
                        "revise",
                        Json::from(self.revise_requests.load(Ordering::Relaxed)),
                    ),
                    (
                        "revise_reuses",
                        Json::from(self.revise_reuses.load(Ordering::Relaxed)),
                    ),
                    (
                        "revise_solve_skips",
                        Json::from(self.revise_solve_skips.load(Ordering::Relaxed)),
                    ),
                    (
                        "batch",
                        Json::from(self.batch_requests.load(Ordering::Relaxed)),
                    ),
                    (
                        "errors",
                        Json::from(self.error_responses.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            (
                "cache",
                Json::obj(vec![
                    ("hits", Json::from(cache.hits)),
                    ("misses", Json::from(cache.misses)),
                    ("evictions", Json::from(cache.evictions)),
                    ("poisoned", Json::from(cache.poisoned)),
                    ("entries", Json::from(cache.entries)),
                    ("capacity", Json::from(self.cache.capacity())),
                    ("shards", Json::from(self.cache.shard_count())),
                ]),
            ),
            (
                "queue",
                Json::obj(vec![
                    ("capacity", Json::from(self.queue.capacity())),
                    ("depth", Json::from(self.queue.depth())),
                    ("enqueued", Json::from(self.queue.enqueued())),
                    ("shed", Json::from(self.jobs_shed.load(Ordering::Relaxed))),
                    (
                        "expired",
                        Json::from(self.jobs_expired.load(Ordering::Relaxed)),
                    ),
                    (
                        "avg_exec_ms",
                        Json::from(self.avg_exec_ms.load(Ordering::Relaxed)),
                    ),
                    ("active_lanes", Json::from(self.queue.active_lanes())),
                    ("max_lane_depth", Json::from(self.queue.max_lane_depth())),
                    ("fair_share", Json::from(self.queue.fair_share())),
                ]),
            ),
            (
                "robustness",
                Json::obj(vec![(
                    "worker_panics",
                    Json::from(self.worker_panics.load(Ordering::Relaxed)),
                )]),
            ),
            (
                "solver",
                Json::obj(vec![
                    (
                        "reduce_dbs",
                        Json::from(self.total_reduce_dbs.load(Ordering::Relaxed)),
                    ),
                    (
                        "arena_bytes_peak",
                        Json::from(self.arena_bytes_peak.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            (
                "formula",
                Json::obj(vec![
                    (
                        "gates_cached",
                        Json::from(self.total_gates_cached.load(Ordering::Relaxed)),
                    ),
                    (
                        "vars_eliminated",
                        Json::from(self.total_vars_eliminated.load(Ordering::Relaxed)),
                    ),
                    (
                        "clauses_subsumed",
                        Json::from(self.total_clauses_subsumed.load(Ordering::Relaxed)),
                    ),
                    (
                        "word_nodes_folded",
                        Json::from(self.total_word_nodes_folded.load(Ordering::Relaxed)),
                    ),
                    (
                        "word_cse_hits",
                        Json::from(self.total_word_cse_hits.load(Ordering::Relaxed)),
                    ),
                    (
                        "bits_narrowed",
                        Json::from(self.total_bits_narrowed.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            (
                "analysis",
                Json::obj(vec![
                    (
                        "analyze_requests",
                        Json::from(self.analyze_requests.load(Ordering::Relaxed)),
                    ),
                    (
                        "lines_pruned",
                        Json::from(self.total_lines_pruned.load(Ordering::Relaxed)),
                    ),
                    (
                        "lint_warnings",
                        Json::from(self.total_lint_warnings.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            (
                "store",
                Json::obj(vec![
                    ("enabled", Json::Bool(self.store.is_some())),
                    ("hits", Json::from(store.hits)),
                    ("misses", Json::from(store.misses)),
                    ("writes", Json::from(store.writes)),
                    ("write_errors", Json::from(store.write_errors)),
                    ("corrupt_records", Json::from(store.corrupt_records)),
                    ("restore_ms", Json::from(store.restore_ms)),
                    ("restored_entries", Json::from(store.restored_entries)),
                ]),
            ),
            ("last_job", last_job),
        ])
        .to_string()
    }

    /// The same counters as [`ServerState::stats_line`], rendered in the
    /// Prometheus text exposition format (one `# TYPE` line per metric,
    /// `_total`-suffixed counters, unsuffixed gauges) and shipped back as
    /// the response's `text` field. The `store` family reads all zeros when
    /// no store is configured.
    fn metrics_line(&self, id: u64) -> String {
        use std::fmt::Write as _;
        fn metric(out: &mut String, name: &str, kind: &str, value: u64) {
            let _ = writeln!(out, "# TYPE {name} {kind}");
            let _ = writeln!(out, "{name} {value}");
        }
        let cache = self.cache.stats();
        let store = self.store.as_ref().map(|s| s.stats()).unwrap_or_default();
        let mut text = String::new();
        let _ = writeln!(text, "# TYPE bugassist_build_info gauge");
        let _ = writeln!(
            text,
            "bugassist_build_info{{version=\"{}\"}} 1",
            env!("CARGO_PKG_VERSION")
        );
        let _ = writeln!(text, "# TYPE bugassist_uptime_seconds gauge");
        let _ = writeln!(
            text,
            "bugassist_uptime_seconds {:.3}",
            self.started.elapsed().as_millis() as f64 / 1000.0
        );
        let _ = writeln!(text, "# TYPE bugassist_requests_total counter");
        for (op, count) in [
            ("localize", &self.localize_requests),
            ("revise", &self.revise_requests),
            ("batch", &self.batch_requests),
        ] {
            let _ = writeln!(
                text,
                "bugassist_requests_total{{op=\"{op}\"}} {}",
                count.load(Ordering::Relaxed)
            );
        }
        for (name, counter) in [
            ("bugassist_error_responses_total", &self.error_responses),
            ("bugassist_revise_reuses_total", &self.revise_reuses),
            (
                "bugassist_revise_solve_skips_total",
                &self.revise_solve_skips,
            ),
        ] {
            metric(&mut text, name, "counter", counter.load(Ordering::Relaxed));
        }
        // Queue family.
        metric(
            &mut text,
            "bugassist_queue_depth",
            "gauge",
            self.queue.depth() as u64,
        );
        metric(
            &mut text,
            "bugassist_queue_capacity",
            "gauge",
            self.queue.capacity() as u64,
        );
        metric(
            &mut text,
            "bugassist_queue_enqueued_total",
            "counter",
            self.queue.enqueued(),
        );
        metric(
            &mut text,
            "bugassist_jobs_shed_total",
            "counter",
            self.jobs_shed.load(Ordering::Relaxed),
        );
        metric(
            &mut text,
            "bugassist_jobs_expired_total",
            "counter",
            self.jobs_expired.load(Ordering::Relaxed),
        );
        metric(
            &mut text,
            "bugassist_queue_avg_exec_ms",
            "gauge",
            self.avg_exec_ms.load(Ordering::Relaxed),
        );
        // Fair-queue family (per-client DRR lanes).
        metric(
            &mut text,
            "bugassist_fair_queue_active_lanes",
            "gauge",
            self.queue.active_lanes() as u64,
        );
        metric(
            &mut text,
            "bugassist_fair_queue_max_lane_depth",
            "gauge",
            self.queue.max_lane_depth() as u64,
        );
        metric(
            &mut text,
            "bugassist_fair_queue_fair_share",
            "gauge",
            self.queue.fair_share() as u64,
        );
        // Cache family (the in-memory tier).
        metric(
            &mut text,
            "bugassist_cache_hits_total",
            "counter",
            cache.hits,
        );
        metric(
            &mut text,
            "bugassist_cache_misses_total",
            "counter",
            cache.misses,
        );
        metric(
            &mut text,
            "bugassist_cache_evictions_total",
            "counter",
            cache.evictions,
        );
        metric(
            &mut text,
            "bugassist_cache_poisoned_total",
            "counter",
            cache.poisoned,
        );
        metric(
            &mut text,
            "bugassist_cache_entries",
            "gauge",
            cache.entries as u64,
        );
        metric(
            &mut text,
            "bugassist_cache_capacity",
            "gauge",
            self.cache.capacity() as u64,
        );
        // Robustness family.
        metric(
            &mut text,
            "bugassist_worker_panics_total",
            "counter",
            self.worker_panics.load(Ordering::Relaxed),
        );
        // Solver family.
        metric(
            &mut text,
            "bugassist_solver_reduce_dbs_total",
            "counter",
            self.total_reduce_dbs.load(Ordering::Relaxed),
        );
        metric(
            &mut text,
            "bugassist_solver_arena_bytes_peak",
            "gauge",
            self.arena_bytes_peak.load(Ordering::Relaxed),
        );
        // Formula-diet family.
        for (name, counter) in [
            (
                "bugassist_formula_gates_cached_total",
                &self.total_gates_cached,
            ),
            (
                "bugassist_formula_vars_eliminated_total",
                &self.total_vars_eliminated,
            ),
            (
                "bugassist_formula_clauses_subsumed_total",
                &self.total_clauses_subsumed,
            ),
            (
                "bugassist_formula_word_nodes_folded_total",
                &self.total_word_nodes_folded,
            ),
            (
                "bugassist_formula_word_cse_hits_total",
                &self.total_word_cse_hits,
            ),
            (
                "bugassist_formula_bits_narrowed_total",
                &self.total_bits_narrowed,
            ),
        ] {
            metric(&mut text, name, "counter", counter.load(Ordering::Relaxed));
        }
        // Static-analysis family.
        for (name, counter) in [
            ("bugassist_analysis_requests_total", &self.analyze_requests),
            (
                "bugassist_analysis_lines_pruned_total",
                &self.total_lines_pruned,
            ),
            (
                "bugassist_analysis_lint_warnings_total",
                &self.total_lint_warnings,
            ),
        ] {
            metric(&mut text, name, "counter", counter.load(Ordering::Relaxed));
        }
        // Store family (the disk tier).
        metric(
            &mut text,
            "bugassist_store_hits_total",
            "counter",
            store.hits,
        );
        metric(
            &mut text,
            "bugassist_store_misses_total",
            "counter",
            store.misses,
        );
        metric(
            &mut text,
            "bugassist_store_writes_total",
            "counter",
            store.writes,
        );
        metric(
            &mut text,
            "bugassist_store_write_errors_total",
            "counter",
            store.write_errors,
        );
        metric(
            &mut text,
            "bugassist_store_corrupt_records_total",
            "counter",
            store.corrupt_records,
        );
        metric(
            &mut text,
            "bugassist_store_restore_milliseconds",
            "gauge",
            store.restore_ms,
        );
        metric(
            &mut text,
            "bugassist_store_restored_entries",
            "gauge",
            store.restored_entries,
        );
        Json::obj(vec![
            ("id", Json::from(id)),
            ("ok", Json::Bool(true)),
            ("op", Json::str("metrics")),
            ("text", Json::str(text)),
        ])
        .to_string()
    }

    /// Answers the `analyze` op: parse, lint, ship the structured
    /// diagnostics. Runs inline on the connection thread (like `health`
    /// and `stats`) — linting is pure dataflow over the AST, orders of
    /// magnitude cheaper than any encoding, so it never queues behind
    /// localization jobs.
    fn analyze_line(&self, id: u64, program: &str, width: usize) -> String {
        let program = match minic::parse_program(program) {
            Ok(program) => program,
            Err(e) => return self.error_line(id, "parse_error", format!("parse error: {e}")),
        };
        self.analyze_requests.fetch_add(1, Ordering::Relaxed);
        let diagnostics = analysis::lint_program(&program, width);
        self.total_lint_warnings.fetch_add(
            diagnostics
                .iter()
                .filter(|d| d.severity == analysis::Severity::Warning)
                .count() as u64,
            Ordering::Relaxed,
        );
        let items: Vec<Json> = diagnostics
            .iter()
            .map(|d| {
                Json::obj(vec![
                    ("line", Json::from(u64::from(d.line.number()))),
                    ("kind", Json::str(d.kind.as_str())),
                    ("severity", Json::str(d.severity.as_str())),
                    ("message", Json::str(d.message.clone())),
                ])
            })
            .collect();
        Json::obj(vec![
            ("id", Json::from(id)),
            ("ok", Json::Bool(true)),
            ("op", Json::str("analyze")),
            ("width", Json::from(width)),
            ("diagnostics", Json::Arr(items)),
        ])
        .to_string()
    }

    /// The cold build: typecheck, encode, warm, package as a cache entry.
    fn build_entry(&self, job: &Job, program: &minic::Program) -> Result<PreparedEntry, String> {
        if let Some(faults) = &self.faults {
            faults.build_start();
        }
        // Typecheck belongs to the build, not the hot path: a cache hit
        // means a structurally identical AST already checked clean.
        if let Some(first) = minic::check_program(program).first() {
            return Err(format!("type error: {first}"));
        }
        // Lint gate: a hard dataflow diagnostic (a read that *every*
        // execution leaves undefined) makes the symbolic encoding
        // meaningless, so it fails the build exactly like a type error
        // would — before any bit-blasting is paid. Type-kind errors were
        // already surfaced above; warnings never block.
        if let Some(first) = analysis::lint_program(program, job.options.width)
            .iter()
            .find(|d| {
                d.severity == analysis::Severity::Error && d.kind != analysis::DiagnosticKind::Type
            })
        {
            return Err(format!("lint error: {first}"));
        }
        let localizer = Localizer::new(
            program,
            &job.entry,
            &job.bmc_spec(),
            &job.localizer_config(),
        )
        .map_err(|e| format!("encode error: {e}"))?;
        // Pay bit-blast *and* formula preparation before publishing, so
        // cached instances are warm for every future input.
        localizer.warm();
        Ok(PreparedEntry::new(
            program.clone(),
            job,
            Arc::new(localizer),
        ))
    }

    /// Fetches the prepared entry for a job: the in-memory cache first,
    /// then (on a miss) the persistent store, and only then a cold build.
    /// Returns the entry, whether it was an in-memory hit, the build
    /// wall-clock milliseconds (0 unless a cold build ran), and the tier
    /// that produced the entry (`"memory"`, `"store"` or `"built"`).
    fn prepared_entry(
        &self,
        job: &Job,
        program: &minic::Program,
        key: u64,
    ) -> Result<(Arc<PreparedEntry>, bool, u128, &'static str), String> {
        let mut build_ms = 0u128;
        let mut tier: &'static str = "built";
        let (result, hit) = self.cache.get_or_build(key, || {
            // Tier 2: a record written through by an earlier build —
            // possibly of a previous daemon process. Any payload that fails
            // to decode (or decodes to the wrong key/fingerprint) is a
            // corrupt record: count it, delete it, fall through to the cold
            // build. Never an error, never stale data.
            if let Some(store) = &self.store {
                let fingerprint = job.options_fingerprint();
                if let Some(payload) = store.load(key, fingerprint) {
                    match persist::decode_entry(&payload) {
                        Ok((k, f, entry)) if k == key && f == fingerprint => {
                            tier = "store";
                            return Ok(entry);
                        }
                        _ => store.note_corrupt(key),
                    }
                }
            }
            let started = Instant::now();
            let built = self.build_entry(job, program);
            build_ms = started.elapsed().as_millis();
            built
        });
        let tier = if hit { "memory" } else { tier };
        result.map(|entry| (entry, hit, build_ms, tier))
    }

    /// A pre-edit report that can be served for this revision *without
    /// re-solving*: available only for relabel-class edits whose
    /// **effective** trusted-selector set is unchanged. Under those
    /// conditions the post-edit MAX-SAT instance is identical to the
    /// pre-edit one and the solver is deterministic, so remapping the
    /// remembered report reproduces exactly what a fresh solve would
    /// return.
    ///
    /// "Effective" is the load-bearing word: a trusted line only hardens a
    /// selector when a blamable statement sits on it. Comparing raw trusted
    /// line numbers would be unsound — a trusted line that pointed at a
    /// blank pre-edit can land on a *shifted statement* post-edit (and vice
    /// versa), silently changing which selectors are hard while the number
    /// sets still match. So the comparison intersects with the trace's
    /// blamable lines on both sides of the map.
    fn remap_candidate(
        prev: &PreparedEntry,
        job: &Job,
        class: &EditClass,
    ) -> Option<LocalizationReport> {
        let identity = LineMap::default();
        let map = match class {
            EditClass::Identical => &identity,
            EditClass::LineShift(map) => map,
            EditClass::LocalToFunction { line_map, .. } => line_map,
            EditClass::Global => return None,
        };
        // The selector lines, pre- and post-edit. For every relabel class
        // the post-edit trace's blamable lines are exactly the pre-edit
        // ones pushed through the map.
        let old_blamable = prev.localizer.trace().blamable_lines();
        let canon = |lines: &mut Vec<u32>| {
            lines.sort_unstable();
            lines.dedup();
        };
        let mut old_effective: Vec<u32> = prev
            .options
            .trusted_lines
            .iter()
            .filter(|&&l| old_blamable.binary_search(&Line(l)).is_ok())
            .map(|&l| map.remap(Line(l)).0)
            .collect();
        canon(&mut old_effective);
        let new_blamable: std::collections::BTreeSet<u32> =
            old_blamable.iter().map(|&l| map.remap(l).0).collect();
        let mut new_effective: Vec<u32> = job
            .options
            .trusted_lines
            .iter()
            .copied()
            .filter(|l| new_blamable.contains(l))
            .collect();
        canon(&mut new_effective);
        if old_effective != new_effective {
            return None;
        }
        prev.cached_report(&job.inputs[0])
            .map(|report| report.remap_lines(map))
    }

    /// Fetches (or delta-builds) the prepared entry for a *revision*: an
    /// edited program whose pre-edit preparation may still be cached under
    /// `prev_key`. On a miss for the revision's own key, the new AST is
    /// diffed against the cached pre-edit segments and the preparation is
    /// reused whenever the edit provably cannot change it
    /// ([`Localizer::reprepare_classified`]); otherwise this falls back to
    /// the same cold build a plain `localize` would run — the answer is
    /// identical either way, only the cost differs. Returns the entry, the
    /// hit flag, the build milliseconds, the delta label, whether the
    /// bit-blasted preparation was reused, and — for relabel-class edits
    /// with a remembered pre-edit report — the report to serve without
    /// solving.
    #[allow(clippy::type_complexity)]
    fn revised_entry(
        &self,
        job: &Job,
        program: &minic::Program,
        key: u64,
        prev: Option<&Arc<PreparedEntry>>,
    ) -> Result<
        (
            Arc<PreparedEntry>,
            bool,
            u128,
            &'static str,
            bool,
            Option<LocalizationReport>,
        ),
        String,
    > {
        let mut build_ms = 0u128;
        // Defaults cover the path where the entry already exists (or a
        // concurrent builder made it): everything was reused.
        let mut delta: &'static str = "cache_hit";
        let mut reused = true;
        let mut remapped: Option<LocalizationReport> = None;
        let (result, hit) = self.cache.get_or_build(key, || {
            let started = Instant::now();
            let built = match prev {
                None => {
                    // The pre-edit entry is gone (evicted, never built, or a
                    // bogus key): a revision of nothing is a cold build.
                    delta = "prev_missing";
                    reused = false;
                    self.build_entry(job, program)
                }
                Some(prev) => {
                    let new_segments = minic::segment_program(program);
                    let class = minic::classify_edit(&prev.segments, &new_segments);
                    // The relabel classes reuse a structure that already
                    // checked clean; every other class must re-typecheck so
                    // a revise answers exactly like a cold build would
                    // (including its errors). (A relabel-class edit whose
                    // *options* changed still skips soundly: typing depends
                    // only on the program, and the structure is identical
                    // to the checked pre-edit AST. Option mismatches are
                    // the core's call — `reprepare_classified` rebuilds and
                    // reports `RebuiltConfig`, so there is exactly one
                    // option-compatibility check in the system.)
                    if !matches!(class, EditClass::Identical | EditClass::LineShift(_)) {
                        if let Some(first) = minic::check_program(program).first() {
                            return Err(format!("type error: {first}"));
                        }
                    }
                    match prev.localizer.reprepare_classified(
                        &class,
                        program,
                        &job.entry,
                        &job.bmc_spec(),
                        &job.localizer_config(),
                    ) {
                        Err(e) => Err(format!("encode error: {e}")),
                        Ok((localizer, dp)) => {
                            delta = dp.label();
                            reused = dp.reused();
                            if reused {
                                remapped = Self::remap_candidate(prev, job, &class);
                            }
                            // Relabeled localizers are born warm; rebuilt
                            // ones pay preparation here, exactly like the
                            // cold path.
                            localizer.warm();
                            Ok(PreparedEntry::with_segments(
                                program.clone(),
                                new_segments,
                                job,
                                Arc::new(localizer),
                            ))
                        }
                    }
                }
            };
            build_ms = started.elapsed().as_millis();
            built
        });
        result.map(|entry| (entry, hit, build_ms, delta, reused, remapped))
    }

    /// Executes one queued job and returns its response line.
    fn execute(&self, queued: &QueuedJob) -> String {
        if let Some(faults) = &self.faults {
            faults.execute_start();
        }
        let op: &'static str = match queued.kind {
            JobKind::Localize => "localize",
            JobKind::Batch => "batch",
            JobKind::Revise { .. } => "revise",
        };
        let program = match minic::parse_program(&queued.job.program) {
            Ok(program) => program,
            Err(e) => {
                return self.error_line(queued.id, "parse_error", format!("parse error: {e}"))
            }
        };
        // Concrete pre-flight: run each failing input through the cheap
        // interpreter before paying the symbolic encoding. Any genuine
        // violation (assertion, bounds, wrong return) proceeds — that is
        // the bug being localized — but a *step-budget* stop means a
        // runaway loop or recursion the encoder would choke on just as
        // badly, so it surfaces as a structured error instead.
        let interp_config = bmc::InterpConfig {
            width: queued.job.options.width,
            ..bmc::InterpConfig::default()
        };
        for input in &queued.job.inputs {
            let outcome = bmc::run_program(&program, &queued.job.entry, input, &[], interp_config);
            if let Some(violation) = outcome.violation {
                if violation.kind == bmc::ViolationKind::StepLimit {
                    return self.error_line(
                        queued.id,
                        "step_budget_exhausted",
                        format!(
                            "input {:?} exhausted the interpreter step budget \
                             ({} steps) at {}: the program likely diverges",
                            input, interp_config.max_steps, violation.line
                        ),
                    );
                }
            }
        }
        let key = queued.job.cache_key(&program);
        // The pre-edit entry, for revisions: the delta source and the
        // warm-start seed donor.
        let prev = match queued.kind {
            JobKind::Revise { prev_key } => self.cache.lookup(prev_key),
            _ => None,
        };
        let (entry, hit, build_ms, delta, reused, mut remapped, tier) = match queued.kind {
            JobKind::Revise { .. } => {
                // The revise path deliberately skips the store consult: its
                // delta machinery wants the *pre-edit* in-memory entry, and
                // a cold fallback build answers identically anyway.
                match self.revised_entry(&queued.job, &program, key, prev.as_ref()) {
                    Ok((entry, hit, build_ms, delta, reused, remapped)) => {
                        let tier = if hit { "memory" } else { "built" };
                        (entry, hit, build_ms, delta, reused, remapped, tier)
                    }
                    Err(message) => {
                        return self.error_line(
                            queued.id,
                            Self::build_error_kind(&message),
                            message,
                        )
                    }
                }
            }
            _ => match self.prepared_entry(&queued.job, &program, key) {
                Ok((entry, hit, build_ms, tier)) => (entry, hit, build_ms, "-", false, None, tier),
                Err(message) => {
                    return self.error_line(queued.id, Self::build_error_kind(&message), message)
                }
            },
        };
        // Asynchronous write-through: a freshly built entry (never one that
        // was served from memory or from the store itself) goes to the
        // writer thread; the request path never touches the disk. Failed or
        // panicked builds return above, so only successful entries can ever
        // be persisted.
        if tier == "built" {
            if let Some(tx) = &*self.store_writer.lock().expect("store_writer poisoned") {
                let _ = tx.send((key, Arc::clone(&entry)));
            }
        }
        let cache: &'static str = if hit { "hit" } else { "miss" };
        // `false` when a revise served a remembered (possibly remapped)
        // report instead of running the MAX-SAT enumeration.
        let mut solved = true;
        // The job's remaining budget: whatever is left of its wall-clock
        // deadline (build time already counted — the deadline is absolute)
        // plus the server-wide conflict cap.
        let budget = Budget {
            deadline: queued.deadline,
            conflict_cap: self.conflict_cap,
        };

        let (payload_key, payload, stats) = match queued.kind {
            JobKind::Batch => match entry
                .localizer
                .localize_batch_budgeted(&queued.job.inputs, budget)
            {
                Err(e) => return self.error_line(queued.id, Self::localize_error_kind(&e), e),
                Ok(ranked) => {
                    let mut merged = bugassist::LocalizerStats::default();
                    for report in &ranked.per_test {
                        merged.reduce_dbs += report.stats.reduce_dbs;
                        merged.arena_bytes = merged.arena_bytes.max(report.stats.arena_bytes);
                        merged.elapsed_ms += report.stats.elapsed_ms;
                        merged.prepare_ms += report.stats.prepare_ms;
                        // Per-localizer constants, identical on every report
                        // of the batch: carry, don't sum.
                        merged.encode_gates_cached = report.stats.encode_gates_cached;
                        merged.hard_clauses_pre_simplify = report.stats.hard_clauses_pre_simplify;
                        merged.clauses_subsumed = report.stats.clauses_subsumed;
                        merged.vars_eliminated = report.stats.vars_eliminated;
                        merged.simplify_ms = report.stats.simplify_ms;
                        merged.word_nodes = report.stats.word_nodes;
                        merged.word_nodes_folded = report.stats.word_nodes_folded;
                        merged.word_cse_hits = report.stats.word_cse_hits;
                        merged.bits_narrowed = report.stats.bits_narrowed;
                    }
                    self.batch_requests.fetch_add(1, Ordering::Relaxed);
                    ("ranked", ranked_to_json(&ranked), merged)
                }
            },
            JobKind::Localize | JobKind::Revise { .. } => {
                let input = &queued.job.inputs[0];
                // Serve a revision without solving when a byte-equivalent
                // report is already known: the relabel paths remap the
                // pre-edit report, and a revise back to an already-served
                // version (an editor undo) replays that version's report.
                let served = remapped.take().or_else(|| match queued.kind {
                    JobKind::Revise { .. } => entry.cached_report(input),
                    _ => None,
                });
                let report = match served {
                    Some(report) => {
                        solved = false;
                        report
                    }
                    None => {
                        // Warm start: seed the racing portfolio with the
                        // pre-edit report's per-rank costs. Deterministic
                        // single-strategy jobs ignore the seeds (see
                        // `Localizer::localize_seeded`), so reports stay
                        // bit-reproducible.
                        let seeds = match queued.kind {
                            JobKind::Revise { .. } if queued.job.options.portfolio => {
                                prev.as_ref().and_then(|p| p.seed_costs())
                            }
                            _ => None,
                        };
                        match entry
                            .localizer
                            .localize_budgeted(input, seeds.as_deref(), budget)
                        {
                            Err(e) => {
                                return self.error_line(queued.id, Self::localize_error_kind(&e), e)
                            }
                            Ok(report) => report,
                        }
                    }
                };
                // Never remember an anytime report: the report cache feeds
                // solve-skipping replays and revise remaps, which must only
                // ever reproduce *proven* enumerations. An incomplete
                // report cached here could be replayed verbatim for a later
                // unbudgeted request of the same input — silently serving a
                // truncated answer with no deadline in sight.
                if report.complete {
                    entry.record_report(input, &report);
                }
                let stats = report.stats;
                match queued.kind {
                    JobKind::Revise { .. } => {
                        self.revise_requests.fetch_add(1, Ordering::Relaxed);
                        if reused {
                            self.revise_reuses.fetch_add(1, Ordering::Relaxed);
                        }
                        if !solved {
                            self.revise_solve_skips.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    _ => {
                        self.localize_requests.fetch_add(1, Ordering::Relaxed);
                    }
                }
                ("report", report_to_json(&report), stats)
            }
        };

        // Replayed reports did no new solver work; only actual solves feed
        // the activity totals.
        if solved {
            self.total_reduce_dbs
                .fetch_add(stats.reduce_dbs, Ordering::Relaxed);
            self.arena_bytes_peak
                .fetch_max(stats.arena_bytes, Ordering::Relaxed);
            self.total_gates_cached
                .fetch_add(stats.encode_gates_cached, Ordering::Relaxed);
            self.total_vars_eliminated
                .fetch_add(stats.vars_eliminated, Ordering::Relaxed);
            self.total_clauses_subsumed
                .fetch_add(stats.clauses_subsumed, Ordering::Relaxed);
            self.total_word_nodes_folded
                .fetch_add(stats.word_nodes_folded, Ordering::Relaxed);
            self.total_word_cse_hits
                .fetch_add(stats.word_cse_hits, Ordering::Relaxed);
            self.total_bits_narrowed
                .fetch_add(stats.bits_narrowed, Ordering::Relaxed);
            self.total_lines_pruned
                .fetch_add(stats.lines_pruned, Ordering::Relaxed);
            self.total_lint_warnings
                .fetch_add(stats.lint_warnings, Ordering::Relaxed);
        }
        *self.last_job.lock().expect("last_job poisoned") = Some(LastJob {
            op,
            cache,
            delta,
            reduce_dbs: stats.reduce_dbs,
            arena_bytes: stats.arena_bytes,
            prepare_ms: stats.prepare_ms,
            build_ms,
            elapsed_ms: stats.elapsed_ms,
            encode_gates_cached: stats.encode_gates_cached,
            vars_eliminated: stats.vars_eliminated,
            clauses_subsumed: stats.clauses_subsumed,
            simplify_ms: stats.simplify_ms,
            word_nodes_folded: stats.word_nodes_folded,
            word_cse_hits: stats.word_cse_hits,
            bits_narrowed: stats.bits_narrowed,
            lines_pruned: stats.lines_pruned,
            prune_ms: stats.prune_ms,
            lint_warnings: stats.lint_warnings,
        });

        let mut pairs = vec![
            ("id", Json::from(queued.id)),
            ("ok", Json::Bool(true)),
            ("op", Json::str(op)),
            ("cache", Json::str(cache)),
            // Which tier satisfied the preparation: "memory", "store" (the
            // disk tier; restart-warm) or "built" (a cold build).
            ("tier", Json::str(tier)),
            ("build_ms", Json::from(build_ms)),
            // The prepared entry's key: clients chain it into the next
            // revise's prev_key.
            ("key", Json::from(key)),
        ];
        if let JobKind::Revise { .. } = queued.kind {
            pairs.push(("delta", Json::str(delta)));
            pairs.push(("reused", Json::Bool(reused)));
            pairs.push(("solved", Json::Bool(solved)));
        }
        pairs.push((payload_key, payload));
        Json::obj(pairs).to_string()
    }
}

/// Decrements the live-connection count (and unregisters the stream) even
/// if the handler unwinds.
struct ConnectionGuard<'a> {
    state: &'a ServerState,
    conn_id: u64,
}

impl Drop for ConnectionGuard<'_> {
    fn drop(&mut self) {
        self.state
            .streams
            .lock()
            .expect("streams poisoned")
            .retain(|(id, _)| *id != self.conn_id);
        let mut live = self.state.connections.lock().expect("connections poisoned");
        *live -= 1;
        self.state.connections_done.notify_all();
    }
}

/// Admits one job to the bounded queue and waits for the worker pool's
/// response line.
///
/// Two admission regimes, chosen by whether the job has an effective
/// deadline (its own `deadline_ms`, else the server default, clamped to the
/// server max):
///
/// * **No deadline** — the legacy backpressure path: a full queue blocks
///   this connection thread (and, through TCP, the client) until a slot
///   frees.
/// * **Deadline** — the job must *never* block the reader. If the queue is
///   full, or the estimated queue wait (depth × average execution time ÷
///   workers) already eats the whole budget, the job is **shed** with a
///   structured `overloaded` error — the client learns immediately and can
///   retry elsewhere/later, instead of waiting out a deadline that the
///   daemon already knows it will miss.
fn enqueue_and_wait(state: &ServerState, id: u64, kind: JobKind, job: Job) -> String {
    let deadline_ms = match (
        job.deadline_ms.or(state.default_deadline_ms),
        state.max_deadline_ms,
    ) {
        (Some(requested), Some(max)) => Some(requested.min(max)),
        (requested, _) => requested,
    };
    let deadline = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    // Fair-queue lane: jobs sharing a client_id share a lane; anonymous
    // traffic shares the default lane. (See `queue` module docs.)
    let lane = job.client_id.clone().unwrap_or_default();
    let (reply, receive) = mpsc::channel();
    let queued = QueuedJob {
        id,
        kind,
        job,
        deadline,
        reply,
    };
    let pushed = match deadline_ms {
        None => state
            .queue
            .push_lane(&lane, queued)
            .map_err(|_| state.error_line(id, "shutting_down", "server is shutting down")),
        Some(budget_ms) => {
            // Under DRR every active lane is served once per pass, so a job
            // joining a lane with `d` waiting jobs sits behind roughly
            // `d × active_lanes` pops — never more than the whole queue.
            // With one lane this degrades to the plain depth estimate.
            let lane_depth = state.queue.lane_depth(&lane) as u64;
            let active_lanes = state.queue.active_lanes().max(1) as u64;
            let est_jobs_ahead =
                (lane_depth.saturating_mul(active_lanes)).min(state.queue.depth() as u64);
            let est_wait_ms = est_jobs_ahead
                .saturating_mul(state.avg_exec_ms.load(Ordering::Relaxed))
                / state.workers.max(1) as u64;
            if est_wait_ms >= budget_ms.max(1) {
                state.jobs_shed.fetch_add(1, Ordering::Relaxed);
                Err(state.error_line(
                    id,
                    "overloaded",
                    format!(
                        "estimated queue wait {est_wait_ms}ms exceeds the job's \
                         {budget_ms}ms deadline; shedding"
                    ),
                ))
            } else {
                state
                    .queue
                    .try_push_lane(&lane, queued)
                    .map_err(|e| match e {
                        TryPushError::Full(_) => {
                            state.jobs_shed.fetch_add(1, Ordering::Relaxed);
                            state.error_line(
                                id,
                                "overloaded",
                                "job queue is full; shedding instead of queueing past the deadline",
                            )
                        }
                        TryPushError::Closed(_) => {
                            state.error_line(id, "shutting_down", "server is shutting down")
                        }
                    })
            }
        }
    };
    match pushed {
        Err(response) => response,
        Ok(()) => receive
            .recv()
            .unwrap_or_else(|_| state.error_line(id, "internal_error", "worker terminated")),
    }
}

/// One inbound request line, read under a byte cap.
enum LineRead {
    /// A complete line (terminator stripped).
    Line(String),
    /// The line exceeded the cap before its `\n` arrived. The rest of the
    /// connection's input stream is unframed garbage, so the caller answers
    /// `request_too_large` and closes.
    TooLong,
    /// The line's bytes were not UTF-8.
    BadUtf8,
    /// EOF, read timeout, or I/O error: drop the connection.
    Closed,
}

/// Reads one `\n`-terminated line, giving up as soon as more than `cap`
/// bytes accumulate without a terminator. Unlike `BufRead::lines`, a
/// client that streams an endless (or merely huge) line can only ever make
/// the server buffer `cap + BufReader-chunk` bytes.
fn read_capped_line<R: BufRead>(reader: &mut R, cap: usize) -> LineRead {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = match reader.fill_buf() {
            Err(_) => return LineRead::Closed,
            Ok([]) if buf.is_empty() => return LineRead::Closed,
            // EOF mid-line: surface the partial line (parity with
            // `BufRead::lines`); the response write will fail harmlessly
            // if the peer is really gone.
            Ok([]) => break,
            Ok(chunk) => chunk,
        };
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                buf.extend_from_slice(&chunk[..pos]);
                reader.consume(pos + 1);
                break;
            }
            None => {
                let len = chunk.len();
                buf.extend_from_slice(chunk);
                reader.consume(len);
            }
        }
        if buf.len() > cap {
            return LineRead::TooLong;
        }
    }
    if buf.len() > cap {
        return LineRead::TooLong;
    }
    match String::from_utf8(buf) {
        Ok(line) => LineRead::Line(line),
        Err(_) => LineRead::BadUtf8,
    }
}

fn handle_connection(state: &ServerState, stream: TcpStream, conn_id: u64) {
    let _guard = ConnectionGuard { state, conn_id };
    // Socket timeouts bound how long a wedged peer can pin this thread:
    // a trickling writer trips the read timeout, a non-draining reader
    // trips the write timeout; either way the connection is dropped.
    let _ = stream.set_read_timeout(state.read_timeout);
    let _ = stream.set_write_timeout(state.write_timeout);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let mut reader = BufReader::new(read_half);
    loop {
        let line = match read_capped_line(&mut reader, state.max_request_bytes) {
            LineRead::Closed => break,
            LineRead::TooLong => {
                // The tail of the oversized line is still in flight, so
                // this connection's framing is unrecoverable: answer once,
                // then close.
                let response = state.error_line(
                    0,
                    "request_too_large",
                    format!(
                        "request line exceeds the {}-byte limit",
                        state.max_request_bytes
                    ),
                );
                let _ = writer.write_all(format!("{response}\n").as_bytes());
                break;
            }
            LineRead::BadUtf8 => {
                let response =
                    state.error_line(0, "parse_error", "request line is not valid UTF-8");
                if writer
                    .write_all(format!("{response}\n").as_bytes())
                    .is_err()
                {
                    break;
                }
                continue;
            }
            LineRead::Line(line) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        let mut stop_after_reply = false;
        let response = match parse_request(&line) {
            Err(e) => state.error_line(0, "parse_error", e),
            Ok(Envelope { id, request }) => match request {
                Request::Health => state.health_line(id),
                Request::Stats => state.stats_line(id),
                Request::Metrics => state.metrics_line(id),
                Request::Analyze { program, width } => state.analyze_line(id, &program, width),
                Request::Shutdown => {
                    state.begin_shutdown();
                    stop_after_reply = true;
                    Json::obj(vec![
                        ("id", Json::from(id)),
                        ("ok", Json::Bool(true)),
                        ("op", Json::str("shutdown")),
                    ])
                    .to_string()
                }
                Request::Localize(job) => enqueue_and_wait(state, id, JobKind::Localize, job),
                Request::Revise { job, prev_key } => {
                    enqueue_and_wait(state, id, JobKind::Revise { prev_key }, job)
                }
                Request::Batch(job) => enqueue_and_wait(state, id, JobKind::Batch, job),
            },
        };
        if writer
            .write_all(format!("{response}\n").as_bytes())
            .is_err()
        {
            break;
        }
        if stop_after_reply {
            break;
        }
    }
}

/// A running localization daemon. Dropping the handle without calling
/// [`Server::shutdown`] leaves the daemon running detached.
#[derive(Debug)]
pub struct Server {
    state: Arc<ServerState>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    /// The asynchronous write-through thread, when a store is configured.
    store_writer: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the worker pool and the acceptor, and returns
    /// immediately.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure, or the failure to create the store
    /// directory when `store_dir` is configured.
    pub fn start(config: ServiceConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let store = match &config.store_dir {
            None => None,
            Some(dir) => Some(Arc::new(store::Store::open(dir)?)),
        };
        let state = Arc::new(ServerState {
            cache: PreparedCache::new(config.cache_capacity, config.cache_shards),
            store: store.clone(),
            store_writer: Mutex::new(None),
            queue: JobQueue::new(config.queue_capacity),
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            local_addr,
            workers,
            default_deadline_ms: config.default_deadline_ms,
            max_deadline_ms: config.max_deadline_ms,
            conflict_cap: config.conflict_cap,
            max_request_bytes: config.max_request_bytes,
            read_timeout: config.read_timeout_ms.map(Duration::from_millis),
            write_timeout: config.write_timeout_ms.map(Duration::from_millis),
            faults: config.fault_plan.clone(),
            avg_exec_ms: AtomicU64::new(0),
            jobs_shed: AtomicU64::new(0),
            jobs_expired: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
            worker_panics: AtomicU64::new(0),
            localize_requests: AtomicU64::new(0),
            revise_requests: AtomicU64::new(0),
            revise_reuses: AtomicU64::new(0),
            revise_solve_skips: AtomicU64::new(0),
            batch_requests: AtomicU64::new(0),
            error_responses: AtomicU64::new(0),
            total_reduce_dbs: AtomicU64::new(0),
            arena_bytes_peak: AtomicU64::new(0),
            total_gates_cached: AtomicU64::new(0),
            total_vars_eliminated: AtomicU64::new(0),
            total_clauses_subsumed: AtomicU64::new(0),
            total_word_nodes_folded: AtomicU64::new(0),
            total_word_cse_hits: AtomicU64::new(0),
            total_bits_narrowed: AtomicU64::new(0),
            analyze_requests: AtomicU64::new(0),
            total_lines_pruned: AtomicU64::new(0),
            total_lint_warnings: AtomicU64::new(0),
            last_job: Mutex::new(None),
            connections: Mutex::new(0),
            connections_done: Condvar::new(),
            streams: Mutex::new(Vec::new()),
        });

        // Restore-on-boot: best-effort preload of every valid record into
        // the in-memory cache, so the first request after a restart is a
        // plain cache hit — no rebuild, no bit-blast, byte-identical
        // reports. Corrupt or undecodable records are counted and deleted;
        // nothing on this path can fail the boot. Gated by
        // `restore_on_boot`: with it off, the disk tier is consulted
        // lazily per request instead (`tier:"store"` answers).
        if let Some(store) = store.as_ref().filter(|_| config.restore_on_boot) {
            let restore_started = Instant::now();
            let mut restored = 0u64;
            for (key, fingerprint, payload) in store.scan() {
                match persist::decode_entry(&payload) {
                    Ok((k, f, entry)) if k == key && f == fingerprint => {
                        state.cache.insert(key, Arc::new(entry));
                        restored += 1;
                    }
                    _ => store.note_corrupt(key),
                }
            }
            store.note_restore(restore_started.elapsed().as_millis() as u64, restored);
        }

        // The write-through thread: serializes and persists entries off the
        // request path. Save errors are counted by the store, never
        // surfaced to a client.
        let store_writer_handle = store.as_ref().map(|store| {
            let store = Arc::clone(store);
            let (tx, rx) = mpsc::channel::<(u64, Arc<PreparedEntry>)>();
            *state.store_writer.lock().expect("store_writer poisoned") = Some(tx);
            std::thread::Builder::new()
                .name("service-store-writer".to_string())
                .spawn(move || {
                    while let Ok((key, entry)) = rx.recv() {
                        if let Some(payload) = persist::encode_entry(&entry) {
                            let _ = store.save(key, persist::entry_fingerprint(&entry), &payload);
                        }
                    }
                })
                .expect("spawn store writer")
        });

        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|i| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("service-worker-{i}"))
                    .spawn(move || {
                        // Drains the queue even after close: every accepted
                        // job gets a response before the pool exits.
                        while let Some(job) = state.queue.pop() {
                            if let Some(faults) = &state.faults {
                                faults.worker_pickup();
                            }
                            // A deadline that expired while the job sat in
                            // the queue: answer, don't solve. The client's
                            // budget is already gone — spending solver time
                            // on it would only delay jobs that can still
                            // make theirs.
                            let response = if job
                                .deadline
                                .is_some_and(|deadline| Instant::now() >= deadline)
                            {
                                state.jobs_expired.fetch_add(1, Ordering::Relaxed);
                                state.error_line(
                                    job.id,
                                    "deadline_exceeded",
                                    "deadline expired while the job was queued",
                                )
                            } else {
                                let started = Instant::now();
                                // A panicking job (a solver bug, or an
                                // injected fault) must cost exactly one
                                // response, never the worker thread: catch
                                // the unwind, answer with a structured
                                // `internal_error`, keep serving. Poisoned
                                // cache slots are evicted by the cache's own
                                // catch_unwind (see `cache::get_or_build`).
                                let outcome =
                                    catch_unwind(AssertUnwindSafe(|| state.execute(&job)));
                                let exec_ms = started.elapsed().as_millis() as u64;
                                // EWMA (3:1 old:new) feeding the admission
                                // controller's queue-wait estimate. Races
                                // between workers just blend samples.
                                let old = state.avg_exec_ms.load(Ordering::Relaxed);
                                let avg = if old == 0 {
                                    exec_ms
                                } else {
                                    (3 * old + exec_ms) / 4
                                };
                                state.avg_exec_ms.store(avg, Ordering::Relaxed);
                                match outcome {
                                    Ok(response) => response,
                                    Err(panic) => {
                                        state.worker_panics.fetch_add(1, Ordering::Relaxed);
                                        let message = panic
                                            .downcast_ref::<&str>()
                                            .map(|s| s.to_string())
                                            .or_else(|| panic.downcast_ref::<String>().cloned())
                                            .unwrap_or_else(|| "unknown panic".to_string());
                                        state.error_line(
                                            job.id,
                                            "internal_error",
                                            format!("job execution panicked: {message}"),
                                        )
                                    }
                                }
                            };
                            // A disconnected client is not an error.
                            let _ = job.reply.send(response);
                            // Injected replica crash: once the configured
                            // execution count is reached, this replica
                            // "dies" abruptly — connections severed, no
                            // snapshot. Exactly one worker pulls the
                            // trigger (one-shot CAS inside the hook).
                            if let Some(faults) = &state.faults {
                                if faults.crash_check() {
                                    state.crash_abrupt();
                                }
                            }
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();

        let acceptor = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("service-acceptor".to_string())
                .spawn(move || {
                    let mut next_conn_id = 0u64;
                    for stream in listener.incoming() {
                        if state.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else {
                            // Typically fd exhaustion (EMFILE): back off
                            // instead of spinning at 100% CPU until the
                            // in-flight connections release descriptors.
                            std::thread::sleep(std::time::Duration::from_millis(10));
                            continue;
                        };
                        let conn_id = next_conn_id;
                        next_conn_id += 1;
                        if let Ok(clone) = stream.try_clone() {
                            state
                                .streams
                                .lock()
                                .expect("streams poisoned")
                                .push((conn_id, clone));
                        }
                        *state.connections.lock().expect("connections poisoned") += 1;
                        let handler_state = Arc::clone(&state);
                        // Detached: the ConnectionGuard accounts for exit —
                        // and must also run if the thread never starts, or
                        // wait() would count a connection that isn't there.
                        let spawned = std::thread::Builder::new()
                            .name(format!("service-conn-{conn_id}"))
                            .spawn(move || handle_connection(&handler_state, stream, conn_id));
                        if spawned.is_err() {
                            drop(ConnectionGuard {
                                state: &state,
                                conn_id,
                            });
                        }
                    }
                })
                .expect("spawn acceptor")
        };

        Ok(Server {
            state,
            local_addr,
            acceptor: Some(acceptor),
            workers: worker_handles,
            store_writer: store_writer_handle,
        })
    }

    /// The address the daemon is listening on (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Signals shutdown without blocking: closes the queue and wakes the
    /// acceptor. Idempotent; also triggered by the wire `shutdown` op.
    pub fn trigger_shutdown(&self) {
        self.state.begin_shutdown();
    }

    /// Blocks until the daemon has fully stopped: acceptor joined, every
    /// accepted job answered, all connection and worker threads gone.
    /// Call after [`Server::trigger_shutdown`] (or after a client sent the
    /// `shutdown` op — this also waits for that).
    pub fn wait(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            acceptor.join().expect("acceptor panicked");
        }
        // Drain the worker pool FIRST: the queue is closed, so the workers
        // finish every accepted job and every blocked connection thread
        // receives (and writes) its response. Only then unblock the idle
        // connection readers by shutting their sockets — never the other
        // way around, or in-flight requests would lose their responses.
        for worker in self.workers.drain(..) {
            worker.join().expect("worker panicked");
        }
        // Snapshot-on-shutdown: the workers are drained, so the cache is
        // quiescent. Push every completed entry through the writer (saves
        // are idempotent — an entry written through earlier is rewritten
        // byte-identically), then hang up the channel so the writer drains
        // its backlog and exits.
        let writer_tx = self
            .state
            .store_writer
            .lock()
            .expect("store_writer poisoned")
            .take();
        // A crashed replica gets no goodbye snapshot (crash_abrupt already
        // dropped the sender); only a graceful shutdown writes one.
        if let Some(tx) = writer_tx {
            if !self.state.crashed.load(Ordering::SeqCst) {
                for (key, entry) in self.state.cache.entries() {
                    let _ = tx.send((key, entry));
                }
            }
        }
        if let Some(writer) = self.store_writer.take() {
            writer.join().expect("store writer panicked");
        }
        // The writer has drained; release the store-directory lock so a
        // successor process (or an in-process restart in tests) can claim
        // the directory. Detached connection threads may briefly outlive
        // this, but they never touch the store.
        if let Some(store) = &self.state.store {
            store.unlock();
        }
        for (_, stream) in self.state.streams.lock().expect("streams poisoned").iter() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let mut live = self.state.connections.lock().expect("connections poisoned");
        while *live > 0 {
            live = self
                .state
                .connections_done
                .wait(live)
                .expect("connections poisoned");
        }
        drop(live);
    }

    /// Graceful shutdown: [`Server::trigger_shutdown`] + [`Server::wait`].
    pub fn shutdown(self) {
        self.trigger_shutdown();
        self.wait();
    }

    /// Kills the replica the way a crashed process would look from the
    /// wire: every open connection is severed immediately (in-flight
    /// requests see a reset, not a response) and **no** cache snapshot is
    /// written — only what the asynchronous write-through already persisted
    /// survives, which is exactly the durability a real crash leaves
    /// behind. The threads are then joined so the harness can restart a
    /// replica on the same store directory. Chaos harnesses use this (or
    /// the `crash_after_executes` fault) to kill one fleet replica
    /// mid-stream.
    pub fn crash(self) {
        self.state.crash_abrupt();
        self.wait();
    }
}
