//! The localization daemon: `TcpListener`, connection threads, a fixed
//! worker pool behind the bounded job queue, and graceful shutdown.
//!
//! ```text
//!  clients ──TCP──▶ acceptor ──▶ connection threads (1/conn, read lines)
//!                                     │ health/stats/shutdown: answered inline
//!                                     ▼ localize/batch/revise
//!                               JobQueue (bounded, Mutex+Condvar)  ◀─ backpressure
//!                                     ▼
//!                               worker pool (N threads)
//!                                     │ PreparedCache lookup / build+warm
//!                                     │   (revise: diff vs cached segments,
//!                                     │    relabel-reuse or rebuild)
//!                                     │ Localizer::localize / localize_batch
//!                                     │   (or remap the pre-edit report)
//!                                     ▼
//!                               reply channel ──▶ connection thread ──▶ client
//! ```
//!
//! * **One response line per request line**, written by the connection's own
//!   thread — responses to one connection are never interleaved, whatever
//!   the worker pool is doing.
//! * **Backpressure**: when `queue_capacity` jobs are in flight the
//!   connection thread blocks in [`JobQueue::push`] and stops reading its
//!   socket; the kernel's TCP window does the rest.
//! * **Graceful shutdown** (the `shutdown` op or [`Server::shutdown`]):
//!   the queue closes, workers drain every accepted job, open sockets are
//!   shut down to unblock readers, and every thread is joined — no accepted
//!   request is ever dropped without a response.

use crate::cache::{PreparedCache, PreparedEntry};
use crate::json::Json;
use crate::protocol::{parse_request, ranked_to_json, report_to_json, Envelope, Job, Request};
use crate::queue::JobQueue;
use bugassist::{LocalizationReport, Localizer};
use minic::ast::Line;
use minic::{EditClass, LineMap};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Configuration of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Address to bind, e.g. `127.0.0.1:0` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads executing localization jobs.
    pub workers: usize,
    /// Total capacity of the prepared-localizer cache, in entries.
    pub cache_capacity: usize,
    /// Number of independently locked cache shards.
    pub cache_shards: usize,
    /// Bound of the job queue; pushes beyond it block (backpressure).
    pub queue_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ServiceConfig {
            addr: "127.0.0.1:0".to_string(),
            workers,
            cache_capacity: 64,
            cache_shards: 8,
            queue_capacity: 2 * workers,
        }
    }
}

/// Snapshot of the most recently completed job's solver counters, surfaced
/// verbatim by the stats endpoint.
#[derive(Clone, Debug)]
struct LastJob {
    op: &'static str,
    cache: &'static str,
    /// Delta classification of the preparation (revise jobs; "-" otherwise).
    delta: &'static str,
    reduce_dbs: u64,
    arena_bytes: u64,
    prepare_ms: u128,
    build_ms: u128,
    elapsed_ms: u128,
    /// Formula-diet counters of the served localizer (gate-cache hits while
    /// bit-blasting; variables/clauses the CNF preprocessor removed).
    encode_gates_cached: u64,
    vars_eliminated: u64,
    clauses_subsumed: u64,
    simplify_ms: u128,
    /// Word-level pre-bit-blast counters of the served localizer.
    word_nodes_folded: u64,
    word_cse_hits: u64,
    bits_narrowed: u64,
}

/// Which queued operation a job performs.
#[derive(Clone, Copy, Debug)]
enum JobKind {
    /// One failing input, one report.
    Localize,
    /// Many failing inputs, one merged ranking.
    Batch,
    /// One failing input over an edited program, delta-prepared against the
    /// cached pre-edit entry.
    Revise {
        /// Cache key of the pre-edit entry.
        prev_key: u64,
    },
}

/// One queued localization job plus the channel its response goes back on.
#[derive(Debug)]
struct QueuedJob {
    id: u64,
    kind: JobKind,
    job: Job,
    reply: mpsc::Sender<String>,
}

#[derive(Debug)]
struct ServerState {
    cache: PreparedCache,
    queue: JobQueue<QueuedJob>,
    started: Instant,
    shutdown: AtomicBool,
    /// The bound address, so shutdown can wake the blocking accept loop
    /// with a throwaway connection.
    local_addr: SocketAddr,
    workers: usize,
    localize_requests: AtomicU64,
    revise_requests: AtomicU64,
    /// Revise requests whose delta-prepare reused the pre-edit bit-blast
    /// (relabel paths + already-cached revisions) instead of re-encoding.
    revise_reuses: AtomicU64,
    /// Revise requests answered by remapping/replaying a remembered report
    /// instead of running the MAX-SAT enumeration.
    revise_solve_skips: AtomicU64,
    batch_requests: AtomicU64,
    error_responses: AtomicU64,
    total_reduce_dbs: AtomicU64,
    arena_bytes_peak: AtomicU64,
    /// Formula-diet totals over all solved jobs (cache builds included via
    /// their first solve): gate-cache hits and preprocessor removals.
    total_gates_cached: AtomicU64,
    total_vars_eliminated: AtomicU64,
    total_clauses_subsumed: AtomicU64,
    /// Word-level pre-bit-blast totals over all solved jobs.
    total_word_nodes_folded: AtomicU64,
    total_word_cse_hits: AtomicU64,
    total_bits_narrowed: AtomicU64,
    last_job: Mutex<Option<LastJob>>,
    /// Number of live connection threads, with a condvar for shutdown to
    /// wait on (connection threads are detached, never joined).
    connections: Mutex<usize>,
    connections_done: Condvar,
    /// Reader halves of open connections, so shutdown can unblock them.
    streams: Mutex<Vec<(u64, TcpStream)>>,
}

impl ServerState {
    /// Starts the graceful shutdown sequence: flag set, queue closed (the
    /// workers drain what was accepted), acceptor woken out of its blocking
    /// `accept` by a throwaway connection. Idempotent; used by both the
    /// wire `shutdown` op and [`Server::trigger_shutdown`].
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
        let _ = TcpStream::connect(self.local_addr);
    }

    fn error_line(&self, id: u64, message: impl std::fmt::Display) -> String {
        self.error_responses.fetch_add(1, Ordering::Relaxed);
        Json::obj(vec![
            ("id", Json::from(id)),
            ("ok", Json::Bool(false)),
            ("error", Json::str(message.to_string())),
        ])
        .to_string()
    }

    fn health_line(&self, id: u64) -> String {
        Json::obj(vec![
            ("id", Json::from(id)),
            ("ok", Json::Bool(true)),
            ("op", Json::str("health")),
            ("status", Json::str("ok")),
            ("uptime_ms", Json::from(self.started.elapsed().as_millis())),
            ("workers", Json::from(self.workers)),
        ])
        .to_string()
    }

    fn stats_line(&self, id: u64) -> String {
        let cache = self.cache.stats();
        let last_job = match &*self.last_job.lock().expect("last_job poisoned") {
            None => Json::Null,
            Some(last) => Json::obj(vec![
                ("op", Json::str(last.op)),
                ("cache", Json::str(last.cache)),
                ("delta", Json::str(last.delta)),
                ("reduce_dbs", Json::from(last.reduce_dbs)),
                ("arena_bytes", Json::from(last.arena_bytes)),
                ("prepare_ms", Json::from(last.prepare_ms)),
                ("build_ms", Json::from(last.build_ms)),
                ("elapsed_ms", Json::from(last.elapsed_ms)),
                ("encode_gates_cached", Json::from(last.encode_gates_cached)),
                ("vars_eliminated", Json::from(last.vars_eliminated)),
                ("clauses_subsumed", Json::from(last.clauses_subsumed)),
                ("simplify_ms", Json::from(last.simplify_ms)),
                ("word_nodes_folded", Json::from(last.word_nodes_folded)),
                ("word_cse_hits", Json::from(last.word_cse_hits)),
                ("bits_narrowed", Json::from(last.bits_narrowed)),
            ]),
        };
        Json::obj(vec![
            ("id", Json::from(id)),
            ("ok", Json::Bool(true)),
            ("op", Json::str("stats")),
            ("uptime_ms", Json::from(self.started.elapsed().as_millis())),
            (
                "requests",
                Json::obj(vec![
                    (
                        "localize",
                        Json::from(self.localize_requests.load(Ordering::Relaxed)),
                    ),
                    (
                        "revise",
                        Json::from(self.revise_requests.load(Ordering::Relaxed)),
                    ),
                    (
                        "revise_reuses",
                        Json::from(self.revise_reuses.load(Ordering::Relaxed)),
                    ),
                    (
                        "revise_solve_skips",
                        Json::from(self.revise_solve_skips.load(Ordering::Relaxed)),
                    ),
                    (
                        "batch",
                        Json::from(self.batch_requests.load(Ordering::Relaxed)),
                    ),
                    (
                        "errors",
                        Json::from(self.error_responses.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            (
                "cache",
                Json::obj(vec![
                    ("hits", Json::from(cache.hits)),
                    ("misses", Json::from(cache.misses)),
                    ("evictions", Json::from(cache.evictions)),
                    ("entries", Json::from(cache.entries)),
                    ("capacity", Json::from(self.cache.capacity())),
                    ("shards", Json::from(self.cache.shard_count())),
                ]),
            ),
            (
                "queue",
                Json::obj(vec![
                    ("capacity", Json::from(self.queue.capacity())),
                    ("depth", Json::from(self.queue.depth())),
                    ("enqueued", Json::from(self.queue.enqueued())),
                ]),
            ),
            (
                "solver",
                Json::obj(vec![
                    (
                        "reduce_dbs",
                        Json::from(self.total_reduce_dbs.load(Ordering::Relaxed)),
                    ),
                    (
                        "arena_bytes_peak",
                        Json::from(self.arena_bytes_peak.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            (
                "formula",
                Json::obj(vec![
                    (
                        "gates_cached",
                        Json::from(self.total_gates_cached.load(Ordering::Relaxed)),
                    ),
                    (
                        "vars_eliminated",
                        Json::from(self.total_vars_eliminated.load(Ordering::Relaxed)),
                    ),
                    (
                        "clauses_subsumed",
                        Json::from(self.total_clauses_subsumed.load(Ordering::Relaxed)),
                    ),
                    (
                        "word_nodes_folded",
                        Json::from(self.total_word_nodes_folded.load(Ordering::Relaxed)),
                    ),
                    (
                        "word_cse_hits",
                        Json::from(self.total_word_cse_hits.load(Ordering::Relaxed)),
                    ),
                    (
                        "bits_narrowed",
                        Json::from(self.total_bits_narrowed.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            ("last_job", last_job),
        ])
        .to_string()
    }

    /// The cold build: typecheck, encode, warm, package as a cache entry.
    fn build_entry(&self, job: &Job, program: &minic::Program) -> Result<PreparedEntry, String> {
        // Typecheck belongs to the build, not the hot path: a cache hit
        // means a structurally identical AST already checked clean.
        if let Some(first) = minic::check_program(program).first() {
            return Err(format!("type error: {first}"));
        }
        let localizer = Localizer::new(
            program,
            &job.entry,
            &job.bmc_spec(),
            &job.localizer_config(),
        )
        .map_err(|e| format!("encode error: {e}"))?;
        // Pay bit-blast *and* formula preparation before publishing, so
        // cached instances are warm for every future input.
        localizer.warm();
        Ok(PreparedEntry::new(
            program.clone(),
            job,
            Arc::new(localizer),
        ))
    }

    /// Fetches the prepared entry for a job, building and warming it on a
    /// miss. Returns the entry, whether it was a hit, and the build
    /// wall-clock milliseconds (0 on a hit).
    fn prepared_entry(
        &self,
        job: &Job,
        program: &minic::Program,
        key: u64,
    ) -> Result<(Arc<PreparedEntry>, bool, u128), String> {
        let mut build_ms = 0u128;
        let (result, hit) = self.cache.get_or_build(key, || {
            let started = Instant::now();
            let built = self.build_entry(job, program);
            build_ms = started.elapsed().as_millis();
            built
        });
        result.map(|entry| (entry, hit, build_ms))
    }

    /// A pre-edit report that can be served for this revision *without
    /// re-solving*: available only for relabel-class edits whose
    /// **effective** trusted-selector set is unchanged. Under those
    /// conditions the post-edit MAX-SAT instance is identical to the
    /// pre-edit one and the solver is deterministic, so remapping the
    /// remembered report reproduces exactly what a fresh solve would
    /// return.
    ///
    /// "Effective" is the load-bearing word: a trusted line only hardens a
    /// selector when a blamable statement sits on it. Comparing raw trusted
    /// line numbers would be unsound — a trusted line that pointed at a
    /// blank pre-edit can land on a *shifted statement* post-edit (and vice
    /// versa), silently changing which selectors are hard while the number
    /// sets still match. So the comparison intersects with the trace's
    /// blamable lines on both sides of the map.
    fn remap_candidate(
        prev: &PreparedEntry,
        job: &Job,
        class: &EditClass,
    ) -> Option<LocalizationReport> {
        let identity = LineMap::default();
        let map = match class {
            EditClass::Identical => &identity,
            EditClass::LineShift(map) => map,
            EditClass::LocalToFunction { line_map, .. } => line_map,
            EditClass::Global => return None,
        };
        // The selector lines, pre- and post-edit. For every relabel class
        // the post-edit trace's blamable lines are exactly the pre-edit
        // ones pushed through the map.
        let old_blamable = prev.localizer.trace().blamable_lines();
        let canon = |lines: &mut Vec<u32>| {
            lines.sort_unstable();
            lines.dedup();
        };
        let mut old_effective: Vec<u32> = prev
            .options
            .trusted_lines
            .iter()
            .filter(|&&l| old_blamable.binary_search(&Line(l)).is_ok())
            .map(|&l| map.remap(Line(l)).0)
            .collect();
        canon(&mut old_effective);
        let new_blamable: std::collections::BTreeSet<u32> =
            old_blamable.iter().map(|&l| map.remap(l).0).collect();
        let mut new_effective: Vec<u32> = job
            .options
            .trusted_lines
            .iter()
            .copied()
            .filter(|l| new_blamable.contains(l))
            .collect();
        canon(&mut new_effective);
        if old_effective != new_effective {
            return None;
        }
        prev.cached_report(&job.inputs[0])
            .map(|report| report.remap_lines(map))
    }

    /// Fetches (or delta-builds) the prepared entry for a *revision*: an
    /// edited program whose pre-edit preparation may still be cached under
    /// `prev_key`. On a miss for the revision's own key, the new AST is
    /// diffed against the cached pre-edit segments and the preparation is
    /// reused whenever the edit provably cannot change it
    /// ([`Localizer::reprepare_classified`]); otherwise this falls back to
    /// the same cold build a plain `localize` would run — the answer is
    /// identical either way, only the cost differs. Returns the entry, the
    /// hit flag, the build milliseconds, the delta label, whether the
    /// bit-blasted preparation was reused, and — for relabel-class edits
    /// with a remembered pre-edit report — the report to serve without
    /// solving.
    #[allow(clippy::type_complexity)]
    fn revised_entry(
        &self,
        job: &Job,
        program: &minic::Program,
        key: u64,
        prev: Option<&Arc<PreparedEntry>>,
    ) -> Result<
        (
            Arc<PreparedEntry>,
            bool,
            u128,
            &'static str,
            bool,
            Option<LocalizationReport>,
        ),
        String,
    > {
        let mut build_ms = 0u128;
        // Defaults cover the path where the entry already exists (or a
        // concurrent builder made it): everything was reused.
        let mut delta: &'static str = "cache_hit";
        let mut reused = true;
        let mut remapped: Option<LocalizationReport> = None;
        let (result, hit) = self.cache.get_or_build(key, || {
            let started = Instant::now();
            let built = match prev {
                None => {
                    // The pre-edit entry is gone (evicted, never built, or a
                    // bogus key): a revision of nothing is a cold build.
                    delta = "prev_missing";
                    reused = false;
                    self.build_entry(job, program)
                }
                Some(prev) => {
                    let new_segments = minic::segment_program(program);
                    let class = minic::classify_edit(&prev.segments, &new_segments);
                    // The relabel classes reuse a structure that already
                    // checked clean; every other class must re-typecheck so
                    // a revise answers exactly like a cold build would
                    // (including its errors). (A relabel-class edit whose
                    // *options* changed still skips soundly: typing depends
                    // only on the program, and the structure is identical
                    // to the checked pre-edit AST. Option mismatches are
                    // the core's call — `reprepare_classified` rebuilds and
                    // reports `RebuiltConfig`, so there is exactly one
                    // option-compatibility check in the system.)
                    if !matches!(class, EditClass::Identical | EditClass::LineShift(_)) {
                        if let Some(first) = minic::check_program(program).first() {
                            return Err(format!("type error: {first}"));
                        }
                    }
                    match prev.localizer.reprepare_classified(
                        &class,
                        program,
                        &job.entry,
                        &job.bmc_spec(),
                        &job.localizer_config(),
                    ) {
                        Err(e) => Err(format!("encode error: {e}")),
                        Ok((localizer, dp)) => {
                            delta = dp.label();
                            reused = dp.reused();
                            if reused {
                                remapped = Self::remap_candidate(prev, job, &class);
                            }
                            // Relabeled localizers are born warm; rebuilt
                            // ones pay preparation here, exactly like the
                            // cold path.
                            localizer.warm();
                            Ok(PreparedEntry::with_segments(
                                program.clone(),
                                new_segments,
                                job,
                                Arc::new(localizer),
                            ))
                        }
                    }
                }
            };
            build_ms = started.elapsed().as_millis();
            built
        });
        result.map(|entry| (entry, hit, build_ms, delta, reused, remapped))
    }

    /// Executes one queued job and returns its response line.
    fn execute(&self, queued: &QueuedJob) -> String {
        let op: &'static str = match queued.kind {
            JobKind::Localize => "localize",
            JobKind::Batch => "batch",
            JobKind::Revise { .. } => "revise",
        };
        let program = match minic::parse_program(&queued.job.program) {
            Ok(program) => program,
            Err(e) => return self.error_line(queued.id, format!("parse error: {e}")),
        };
        let key = queued.job.cache_key(&program);
        // The pre-edit entry, for revisions: the delta source and the
        // warm-start seed donor.
        let prev = match queued.kind {
            JobKind::Revise { prev_key } => self.cache.lookup(prev_key),
            _ => None,
        };
        let (entry, hit, build_ms, delta, reused, mut remapped) = match queued.kind {
            JobKind::Revise { .. } => {
                match self.revised_entry(&queued.job, &program, key, prev.as_ref()) {
                    Ok(found) => found,
                    Err(message) => return self.error_line(queued.id, message),
                }
            }
            _ => match self.prepared_entry(&queued.job, &program, key) {
                Ok((entry, hit, build_ms)) => (entry, hit, build_ms, "-", false, None),
                Err(message) => return self.error_line(queued.id, message),
            },
        };
        let cache: &'static str = if hit { "hit" } else { "miss" };
        // `false` when a revise served a remembered (possibly remapped)
        // report instead of running the MAX-SAT enumeration.
        let mut solved = true;

        let (payload_key, payload, stats) = match queued.kind {
            JobKind::Batch => match entry.localizer.localize_batch(&queued.job.inputs) {
                Err(e) => return self.error_line(queued.id, e),
                Ok(ranked) => {
                    let mut merged = bugassist::LocalizerStats::default();
                    for report in &ranked.per_test {
                        merged.reduce_dbs += report.stats.reduce_dbs;
                        merged.arena_bytes = merged.arena_bytes.max(report.stats.arena_bytes);
                        merged.elapsed_ms += report.stats.elapsed_ms;
                        merged.prepare_ms += report.stats.prepare_ms;
                        // Per-localizer constants, identical on every report
                        // of the batch: carry, don't sum.
                        merged.encode_gates_cached = report.stats.encode_gates_cached;
                        merged.hard_clauses_pre_simplify = report.stats.hard_clauses_pre_simplify;
                        merged.clauses_subsumed = report.stats.clauses_subsumed;
                        merged.vars_eliminated = report.stats.vars_eliminated;
                        merged.simplify_ms = report.stats.simplify_ms;
                        merged.word_nodes = report.stats.word_nodes;
                        merged.word_nodes_folded = report.stats.word_nodes_folded;
                        merged.word_cse_hits = report.stats.word_cse_hits;
                        merged.bits_narrowed = report.stats.bits_narrowed;
                    }
                    self.batch_requests.fetch_add(1, Ordering::Relaxed);
                    ("ranked", ranked_to_json(&ranked), merged)
                }
            },
            JobKind::Localize | JobKind::Revise { .. } => {
                let input = &queued.job.inputs[0];
                // Serve a revision without solving when a byte-equivalent
                // report is already known: the relabel paths remap the
                // pre-edit report, and a revise back to an already-served
                // version (an editor undo) replays that version's report.
                let served = remapped.take().or_else(|| match queued.kind {
                    JobKind::Revise { .. } => entry.cached_report(input),
                    _ => None,
                });
                let report = match served {
                    Some(report) => {
                        solved = false;
                        report
                    }
                    None => {
                        // Warm start: seed the racing portfolio with the
                        // pre-edit report's per-rank costs. Deterministic
                        // single-strategy jobs ignore the seeds (see
                        // `Localizer::localize_seeded`), so reports stay
                        // bit-reproducible.
                        let seeds = match queued.kind {
                            JobKind::Revise { .. } if queued.job.options.portfolio => {
                                prev.as_ref().and_then(|p| p.seed_costs())
                            }
                            _ => None,
                        };
                        match entry.localizer.localize_seeded(input, seeds.as_deref()) {
                            Err(e) => return self.error_line(queued.id, e),
                            Ok(report) => report,
                        }
                    }
                };
                entry.record_report(input, &report);
                let stats = report.stats;
                match queued.kind {
                    JobKind::Revise { .. } => {
                        self.revise_requests.fetch_add(1, Ordering::Relaxed);
                        if reused {
                            self.revise_reuses.fetch_add(1, Ordering::Relaxed);
                        }
                        if !solved {
                            self.revise_solve_skips.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    _ => {
                        self.localize_requests.fetch_add(1, Ordering::Relaxed);
                    }
                }
                ("report", report_to_json(&report), stats)
            }
        };

        // Replayed reports did no new solver work; only actual solves feed
        // the activity totals.
        if solved {
            self.total_reduce_dbs
                .fetch_add(stats.reduce_dbs, Ordering::Relaxed);
            self.arena_bytes_peak
                .fetch_max(stats.arena_bytes, Ordering::Relaxed);
            self.total_gates_cached
                .fetch_add(stats.encode_gates_cached, Ordering::Relaxed);
            self.total_vars_eliminated
                .fetch_add(stats.vars_eliminated, Ordering::Relaxed);
            self.total_clauses_subsumed
                .fetch_add(stats.clauses_subsumed, Ordering::Relaxed);
            self.total_word_nodes_folded
                .fetch_add(stats.word_nodes_folded, Ordering::Relaxed);
            self.total_word_cse_hits
                .fetch_add(stats.word_cse_hits, Ordering::Relaxed);
            self.total_bits_narrowed
                .fetch_add(stats.bits_narrowed, Ordering::Relaxed);
        }
        *self.last_job.lock().expect("last_job poisoned") = Some(LastJob {
            op,
            cache,
            delta,
            reduce_dbs: stats.reduce_dbs,
            arena_bytes: stats.arena_bytes,
            prepare_ms: stats.prepare_ms,
            build_ms,
            elapsed_ms: stats.elapsed_ms,
            encode_gates_cached: stats.encode_gates_cached,
            vars_eliminated: stats.vars_eliminated,
            clauses_subsumed: stats.clauses_subsumed,
            simplify_ms: stats.simplify_ms,
            word_nodes_folded: stats.word_nodes_folded,
            word_cse_hits: stats.word_cse_hits,
            bits_narrowed: stats.bits_narrowed,
        });

        let mut pairs = vec![
            ("id", Json::from(queued.id)),
            ("ok", Json::Bool(true)),
            ("op", Json::str(op)),
            ("cache", Json::str(cache)),
            ("build_ms", Json::from(build_ms)),
            // The prepared entry's key: clients chain it into the next
            // revise's prev_key.
            ("key", Json::from(key)),
        ];
        if let JobKind::Revise { .. } = queued.kind {
            pairs.push(("delta", Json::str(delta)));
            pairs.push(("reused", Json::Bool(reused)));
            pairs.push(("solved", Json::Bool(solved)));
        }
        pairs.push((payload_key, payload));
        Json::obj(pairs).to_string()
    }
}

/// Decrements the live-connection count (and unregisters the stream) even
/// if the handler unwinds.
struct ConnectionGuard<'a> {
    state: &'a ServerState,
    conn_id: u64,
}

impl Drop for ConnectionGuard<'_> {
    fn drop(&mut self) {
        self.state
            .streams
            .lock()
            .expect("streams poisoned")
            .retain(|(id, _)| *id != self.conn_id);
        let mut live = self.state.connections.lock().expect("connections poisoned");
        *live -= 1;
        self.state.connections_done.notify_all();
    }
}

/// Pushes one job through the bounded queue (blocking on backpressure) and
/// waits for the worker pool's response line.
fn enqueue_and_wait(state: &ServerState, id: u64, kind: JobKind, job: Job) -> String {
    let (reply, receive) = mpsc::channel();
    let queued = QueuedJob {
        id,
        kind,
        job,
        reply,
    };
    match state.queue.push(queued) {
        Err(_) => state.error_line(id, "server is shutting down"),
        Ok(()) => receive
            .recv()
            .unwrap_or_else(|_| state.error_line(id, "worker terminated")),
    }
}

fn handle_connection(state: &ServerState, stream: TcpStream, conn_id: u64) {
    let _guard = ConnectionGuard { state, conn_id };
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let reader = BufReader::new(read_half);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let mut stop_after_reply = false;
        let response = match parse_request(&line) {
            Err(e) => state.error_line(0, e),
            Ok(Envelope { id, request }) => match request {
                Request::Health => state.health_line(id),
                Request::Stats => state.stats_line(id),
                Request::Shutdown => {
                    state.begin_shutdown();
                    stop_after_reply = true;
                    Json::obj(vec![
                        ("id", Json::from(id)),
                        ("ok", Json::Bool(true)),
                        ("op", Json::str("shutdown")),
                    ])
                    .to_string()
                }
                Request::Localize(job) => enqueue_and_wait(state, id, JobKind::Localize, job),
                Request::Revise { job, prev_key } => {
                    enqueue_and_wait(state, id, JobKind::Revise { prev_key }, job)
                }
                Request::Batch(job) => enqueue_and_wait(state, id, JobKind::Batch, job),
            },
        };
        if writer
            .write_all(format!("{response}\n").as_bytes())
            .is_err()
        {
            break;
        }
        if stop_after_reply {
            break;
        }
    }
}

/// A running localization daemon. Dropping the handle without calling
/// [`Server::shutdown`] leaves the daemon running detached.
#[derive(Debug)]
pub struct Server {
    state: Arc<ServerState>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the worker pool and the acceptor, and returns
    /// immediately.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(config: ServiceConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let state = Arc::new(ServerState {
            cache: PreparedCache::new(config.cache_capacity, config.cache_shards),
            queue: JobQueue::new(config.queue_capacity),
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            local_addr,
            workers,
            localize_requests: AtomicU64::new(0),
            revise_requests: AtomicU64::new(0),
            revise_reuses: AtomicU64::new(0),
            revise_solve_skips: AtomicU64::new(0),
            batch_requests: AtomicU64::new(0),
            error_responses: AtomicU64::new(0),
            total_reduce_dbs: AtomicU64::new(0),
            arena_bytes_peak: AtomicU64::new(0),
            total_gates_cached: AtomicU64::new(0),
            total_vars_eliminated: AtomicU64::new(0),
            total_clauses_subsumed: AtomicU64::new(0),
            total_word_nodes_folded: AtomicU64::new(0),
            total_word_cse_hits: AtomicU64::new(0),
            total_bits_narrowed: AtomicU64::new(0),
            last_job: Mutex::new(None),
            connections: Mutex::new(0),
            connections_done: Condvar::new(),
            streams: Mutex::new(Vec::new()),
        });

        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|i| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("service-worker-{i}"))
                    .spawn(move || {
                        // Drains the queue even after close: every accepted
                        // job gets a response before the pool exits.
                        while let Some(job) = state.queue.pop() {
                            let response = state.execute(&job);
                            // A disconnected client is not an error.
                            let _ = job.reply.send(response);
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();

        let acceptor = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("service-acceptor".to_string())
                .spawn(move || {
                    let mut next_conn_id = 0u64;
                    for stream in listener.incoming() {
                        if state.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else {
                            // Typically fd exhaustion (EMFILE): back off
                            // instead of spinning at 100% CPU until the
                            // in-flight connections release descriptors.
                            std::thread::sleep(std::time::Duration::from_millis(10));
                            continue;
                        };
                        let conn_id = next_conn_id;
                        next_conn_id += 1;
                        if let Ok(clone) = stream.try_clone() {
                            state
                                .streams
                                .lock()
                                .expect("streams poisoned")
                                .push((conn_id, clone));
                        }
                        *state.connections.lock().expect("connections poisoned") += 1;
                        let handler_state = Arc::clone(&state);
                        // Detached: the ConnectionGuard accounts for exit —
                        // and must also run if the thread never starts, or
                        // wait() would count a connection that isn't there.
                        let spawned = std::thread::Builder::new()
                            .name(format!("service-conn-{conn_id}"))
                            .spawn(move || handle_connection(&handler_state, stream, conn_id));
                        if spawned.is_err() {
                            drop(ConnectionGuard {
                                state: &state,
                                conn_id,
                            });
                        }
                    }
                })
                .expect("spawn acceptor")
        };

        Ok(Server {
            state,
            local_addr,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }

    /// The address the daemon is listening on (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Signals shutdown without blocking: closes the queue and wakes the
    /// acceptor. Idempotent; also triggered by the wire `shutdown` op.
    pub fn trigger_shutdown(&self) {
        self.state.begin_shutdown();
    }

    /// Blocks until the daemon has fully stopped: acceptor joined, every
    /// accepted job answered, all connection and worker threads gone.
    /// Call after [`Server::trigger_shutdown`] (or after a client sent the
    /// `shutdown` op — this also waits for that).
    pub fn wait(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            acceptor.join().expect("acceptor panicked");
        }
        // Drain the worker pool FIRST: the queue is closed, so the workers
        // finish every accepted job and every blocked connection thread
        // receives (and writes) its response. Only then unblock the idle
        // connection readers by shutting their sockets — never the other
        // way around, or in-flight requests would lose their responses.
        for worker in self.workers.drain(..) {
            worker.join().expect("worker panicked");
        }
        for (_, stream) in self.state.streams.lock().expect("streams poisoned").iter() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let mut live = self.state.connections.lock().expect("connections poisoned");
        while *live > 0 {
            live = self
                .state
                .connections_done
                .wait(live)
                .expect("connections poisoned");
        }
        drop(live);
    }

    /// Graceful shutdown: [`Server::trigger_shutdown`] + [`Server::wait`].
    pub fn shutdown(self) {
        self.trigger_shutdown();
        self.wait();
    }
}
