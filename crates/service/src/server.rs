//! The localization daemon: `TcpListener`, connection threads, a fixed
//! worker pool behind the bounded job queue, and graceful shutdown.
//!
//! ```text
//!  clients ──TCP──▶ acceptor ──▶ connection threads (1/conn, read lines)
//!                                     │ health/stats/shutdown: answered inline
//!                                     ▼ localize/batch
//!                               JobQueue (bounded, Mutex+Condvar)  ◀─ backpressure
//!                                     ▼
//!                               worker pool (N threads)
//!                                     │ PreparedCache lookup / build+warm
//!                                     │ Localizer::localize / localize_batch
//!                                     ▼
//!                               reply channel ──▶ connection thread ──▶ client
//! ```
//!
//! * **One response line per request line**, written by the connection's own
//!   thread — responses to one connection are never interleaved, whatever
//!   the worker pool is doing.
//! * **Backpressure**: when `queue_capacity` jobs are in flight the
//!   connection thread blocks in [`JobQueue::push`] and stops reading its
//!   socket; the kernel's TCP window does the rest.
//! * **Graceful shutdown** (the `shutdown` op or [`Server::shutdown`]):
//!   the queue closes, workers drain every accepted job, open sockets are
//!   shut down to unblock readers, and every thread is joined — no accepted
//!   request is ever dropped without a response.

use crate::cache::PreparedCache;
use crate::json::Json;
use crate::protocol::{parse_request, ranked_to_json, report_to_json, Envelope, Job, Request};
use crate::queue::JobQueue;
use bugassist::Localizer;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Configuration of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Address to bind, e.g. `127.0.0.1:0` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads executing localization jobs.
    pub workers: usize,
    /// Total capacity of the prepared-localizer cache, in entries.
    pub cache_capacity: usize,
    /// Number of independently locked cache shards.
    pub cache_shards: usize,
    /// Bound of the job queue; pushes beyond it block (backpressure).
    pub queue_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ServiceConfig {
            addr: "127.0.0.1:0".to_string(),
            workers,
            cache_capacity: 64,
            cache_shards: 8,
            queue_capacity: 2 * workers,
        }
    }
}

/// Snapshot of the most recently completed job's solver counters, surfaced
/// verbatim by the stats endpoint.
#[derive(Clone, Debug)]
struct LastJob {
    op: &'static str,
    cache: &'static str,
    reduce_dbs: u64,
    arena_bytes: u64,
    prepare_ms: u128,
    build_ms: u128,
    elapsed_ms: u128,
}

/// One queued localization job plus the channel its response goes back on.
#[derive(Debug)]
struct QueuedJob {
    id: u64,
    batch: bool,
    job: Job,
    reply: mpsc::Sender<String>,
}

#[derive(Debug)]
struct ServerState {
    cache: PreparedCache,
    queue: JobQueue<QueuedJob>,
    started: Instant,
    shutdown: AtomicBool,
    /// The bound address, so shutdown can wake the blocking accept loop
    /// with a throwaway connection.
    local_addr: SocketAddr,
    workers: usize,
    localize_requests: AtomicU64,
    batch_requests: AtomicU64,
    error_responses: AtomicU64,
    total_reduce_dbs: AtomicU64,
    arena_bytes_peak: AtomicU64,
    last_job: Mutex<Option<LastJob>>,
    /// Number of live connection threads, with a condvar for shutdown to
    /// wait on (connection threads are detached, never joined).
    connections: Mutex<usize>,
    connections_done: Condvar,
    /// Reader halves of open connections, so shutdown can unblock them.
    streams: Mutex<Vec<(u64, TcpStream)>>,
}

impl ServerState {
    /// Starts the graceful shutdown sequence: flag set, queue closed (the
    /// workers drain what was accepted), acceptor woken out of its blocking
    /// `accept` by a throwaway connection. Idempotent; used by both the
    /// wire `shutdown` op and [`Server::trigger_shutdown`].
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
        let _ = TcpStream::connect(self.local_addr);
    }

    fn error_line(&self, id: u64, message: impl std::fmt::Display) -> String {
        self.error_responses.fetch_add(1, Ordering::Relaxed);
        Json::obj(vec![
            ("id", Json::from(id)),
            ("ok", Json::Bool(false)),
            ("error", Json::str(message.to_string())),
        ])
        .to_string()
    }

    fn health_line(&self, id: u64) -> String {
        Json::obj(vec![
            ("id", Json::from(id)),
            ("ok", Json::Bool(true)),
            ("op", Json::str("health")),
            ("status", Json::str("ok")),
            ("uptime_ms", Json::from(self.started.elapsed().as_millis())),
            ("workers", Json::from(self.workers)),
        ])
        .to_string()
    }

    fn stats_line(&self, id: u64) -> String {
        let cache = self.cache.stats();
        let last_job = match &*self.last_job.lock().expect("last_job poisoned") {
            None => Json::Null,
            Some(last) => Json::obj(vec![
                ("op", Json::str(last.op)),
                ("cache", Json::str(last.cache)),
                ("reduce_dbs", Json::from(last.reduce_dbs)),
                ("arena_bytes", Json::from(last.arena_bytes)),
                ("prepare_ms", Json::from(last.prepare_ms)),
                ("build_ms", Json::from(last.build_ms)),
                ("elapsed_ms", Json::from(last.elapsed_ms)),
            ]),
        };
        Json::obj(vec![
            ("id", Json::from(id)),
            ("ok", Json::Bool(true)),
            ("op", Json::str("stats")),
            ("uptime_ms", Json::from(self.started.elapsed().as_millis())),
            (
                "requests",
                Json::obj(vec![
                    (
                        "localize",
                        Json::from(self.localize_requests.load(Ordering::Relaxed)),
                    ),
                    (
                        "batch",
                        Json::from(self.batch_requests.load(Ordering::Relaxed)),
                    ),
                    (
                        "errors",
                        Json::from(self.error_responses.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            (
                "cache",
                Json::obj(vec![
                    ("hits", Json::from(cache.hits)),
                    ("misses", Json::from(cache.misses)),
                    ("evictions", Json::from(cache.evictions)),
                    ("entries", Json::from(cache.entries)),
                    ("capacity", Json::from(self.cache.capacity())),
                    ("shards", Json::from(self.cache.shard_count())),
                ]),
            ),
            (
                "queue",
                Json::obj(vec![
                    ("capacity", Json::from(self.queue.capacity())),
                    ("depth", Json::from(self.queue.depth())),
                    ("enqueued", Json::from(self.queue.enqueued())),
                ]),
            ),
            (
                "solver",
                Json::obj(vec![
                    (
                        "reduce_dbs",
                        Json::from(self.total_reduce_dbs.load(Ordering::Relaxed)),
                    ),
                    (
                        "arena_bytes_peak",
                        Json::from(self.arena_bytes_peak.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            ("last_job", last_job),
        ])
        .to_string()
    }

    /// Fetches the prepared localizer for a job, building and warming it on
    /// a miss. Returns the instance, whether it was a hit, and the build
    /// wall-clock milliseconds (0 on a hit).
    fn prepared_localizer(
        &self,
        job: &Job,
        program: &minic::Program,
    ) -> Result<(Arc<Localizer>, bool, u128), String> {
        let key = job.cache_key(program);
        let mut build_ms = 0u128;
        let (result, hit) = self.cache.get_or_build(key, || {
            let started = Instant::now();
            // Typecheck belongs to the build, not the hot path: a cache hit
            // means a structurally identical AST already checked clean.
            if let Some(first) = minic::check_program(program).first() {
                return Err(format!("type error: {first}"));
            }
            let localizer = Localizer::new(
                program,
                &job.entry,
                &job.bmc_spec(),
                &job.localizer_config(),
            )
            .map_err(|e| format!("encode error: {e}"))?;
            // Pay bit-blast *and* formula preparation before publishing, so
            // cached instances are warm for every future input.
            localizer.warm();
            build_ms = started.elapsed().as_millis();
            Ok(localizer)
        });
        result.map(|localizer| (localizer, hit, build_ms))
    }

    /// Executes one queued job and returns its response line.
    fn execute(&self, queued: &QueuedJob) -> String {
        let op: &'static str = if queued.batch { "batch" } else { "localize" };
        let program = match minic::parse_program(&queued.job.program) {
            Ok(program) => program,
            Err(e) => return self.error_line(queued.id, format!("parse error: {e}")),
        };
        let (localizer, hit, build_ms) = match self.prepared_localizer(&queued.job, &program) {
            Ok(found) => found,
            Err(message) => return self.error_line(queued.id, message),
        };
        let cache: &'static str = if hit { "hit" } else { "miss" };

        let (payload_key, payload, stats) = if queued.batch {
            match localizer.localize_batch(&queued.job.inputs) {
                Err(e) => return self.error_line(queued.id, e),
                Ok(ranked) => {
                    let mut merged = bugassist::LocalizerStats::default();
                    for report in &ranked.per_test {
                        merged.reduce_dbs += report.stats.reduce_dbs;
                        merged.arena_bytes = merged.arena_bytes.max(report.stats.arena_bytes);
                        merged.elapsed_ms += report.stats.elapsed_ms;
                        merged.prepare_ms += report.stats.prepare_ms;
                    }
                    self.batch_requests.fetch_add(1, Ordering::Relaxed);
                    ("ranked", ranked_to_json(&ranked), merged)
                }
            }
        } else {
            match localizer.localize(&queued.job.inputs[0]) {
                Err(e) => return self.error_line(queued.id, e),
                Ok(report) => {
                    let stats = report.stats;
                    self.localize_requests.fetch_add(1, Ordering::Relaxed);
                    ("report", report_to_json(&report), stats)
                }
            }
        };

        self.total_reduce_dbs
            .fetch_add(stats.reduce_dbs, Ordering::Relaxed);
        self.arena_bytes_peak
            .fetch_max(stats.arena_bytes, Ordering::Relaxed);
        *self.last_job.lock().expect("last_job poisoned") = Some(LastJob {
            op,
            cache,
            reduce_dbs: stats.reduce_dbs,
            arena_bytes: stats.arena_bytes,
            prepare_ms: stats.prepare_ms,
            build_ms,
            elapsed_ms: stats.elapsed_ms,
        });

        Json::obj(vec![
            ("id", Json::from(queued.id)),
            ("ok", Json::Bool(true)),
            ("op", Json::str(op)),
            ("cache", Json::str(cache)),
            ("build_ms", Json::from(build_ms)),
            (payload_key, payload),
        ])
        .to_string()
    }
}

/// Decrements the live-connection count (and unregisters the stream) even
/// if the handler unwinds.
struct ConnectionGuard<'a> {
    state: &'a ServerState,
    conn_id: u64,
}

impl Drop for ConnectionGuard<'_> {
    fn drop(&mut self) {
        self.state
            .streams
            .lock()
            .expect("streams poisoned")
            .retain(|(id, _)| *id != self.conn_id);
        let mut live = self.state.connections.lock().expect("connections poisoned");
        *live -= 1;
        self.state.connections_done.notify_all();
    }
}

/// Pushes one job through the bounded queue (blocking on backpressure) and
/// waits for the worker pool's response line.
fn enqueue_and_wait(state: &ServerState, id: u64, batch: bool, job: Job) -> String {
    let (reply, receive) = mpsc::channel();
    let queued = QueuedJob {
        id,
        batch,
        job,
        reply,
    };
    match state.queue.push(queued) {
        Err(_) => state.error_line(id, "server is shutting down"),
        Ok(()) => receive
            .recv()
            .unwrap_or_else(|_| state.error_line(id, "worker terminated")),
    }
}

fn handle_connection(state: &ServerState, stream: TcpStream, conn_id: u64) {
    let _guard = ConnectionGuard { state, conn_id };
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let reader = BufReader::new(read_half);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let mut stop_after_reply = false;
        let response = match parse_request(&line) {
            Err(e) => state.error_line(0, e),
            Ok(Envelope { id, request }) => match request {
                Request::Health => state.health_line(id),
                Request::Stats => state.stats_line(id),
                Request::Shutdown => {
                    state.begin_shutdown();
                    stop_after_reply = true;
                    Json::obj(vec![
                        ("id", Json::from(id)),
                        ("ok", Json::Bool(true)),
                        ("op", Json::str("shutdown")),
                    ])
                    .to_string()
                }
                Request::Localize(job) => enqueue_and_wait(state, id, false, job),
                Request::Batch(job) => enqueue_and_wait(state, id, true, job),
            },
        };
        if writer
            .write_all(format!("{response}\n").as_bytes())
            .is_err()
        {
            break;
        }
        if stop_after_reply {
            break;
        }
    }
}

/// A running localization daemon. Dropping the handle without calling
/// [`Server::shutdown`] leaves the daemon running detached.
#[derive(Debug)]
pub struct Server {
    state: Arc<ServerState>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the worker pool and the acceptor, and returns
    /// immediately.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(config: ServiceConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let state = Arc::new(ServerState {
            cache: PreparedCache::new(config.cache_capacity, config.cache_shards),
            queue: JobQueue::new(config.queue_capacity),
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            local_addr,
            workers,
            localize_requests: AtomicU64::new(0),
            batch_requests: AtomicU64::new(0),
            error_responses: AtomicU64::new(0),
            total_reduce_dbs: AtomicU64::new(0),
            arena_bytes_peak: AtomicU64::new(0),
            last_job: Mutex::new(None),
            connections: Mutex::new(0),
            connections_done: Condvar::new(),
            streams: Mutex::new(Vec::new()),
        });

        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|i| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("service-worker-{i}"))
                    .spawn(move || {
                        // Drains the queue even after close: every accepted
                        // job gets a response before the pool exits.
                        while let Some(job) = state.queue.pop() {
                            let response = state.execute(&job);
                            // A disconnected client is not an error.
                            let _ = job.reply.send(response);
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();

        let acceptor = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("service-acceptor".to_string())
                .spawn(move || {
                    let mut next_conn_id = 0u64;
                    for stream in listener.incoming() {
                        if state.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else {
                            // Typically fd exhaustion (EMFILE): back off
                            // instead of spinning at 100% CPU until the
                            // in-flight connections release descriptors.
                            std::thread::sleep(std::time::Duration::from_millis(10));
                            continue;
                        };
                        let conn_id = next_conn_id;
                        next_conn_id += 1;
                        if let Ok(clone) = stream.try_clone() {
                            state
                                .streams
                                .lock()
                                .expect("streams poisoned")
                                .push((conn_id, clone));
                        }
                        *state.connections.lock().expect("connections poisoned") += 1;
                        let handler_state = Arc::clone(&state);
                        // Detached: the ConnectionGuard accounts for exit —
                        // and must also run if the thread never starts, or
                        // wait() would count a connection that isn't there.
                        let spawned = std::thread::Builder::new()
                            .name(format!("service-conn-{conn_id}"))
                            .spawn(move || handle_connection(&handler_state, stream, conn_id));
                        if spawned.is_err() {
                            drop(ConnectionGuard {
                                state: &state,
                                conn_id,
                            });
                        }
                    }
                })
                .expect("spawn acceptor")
        };

        Ok(Server {
            state,
            local_addr,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }

    /// The address the daemon is listening on (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Signals shutdown without blocking: closes the queue and wakes the
    /// acceptor. Idempotent; also triggered by the wire `shutdown` op.
    pub fn trigger_shutdown(&self) {
        self.state.begin_shutdown();
    }

    /// Blocks until the daemon has fully stopped: acceptor joined, every
    /// accepted job answered, all connection and worker threads gone.
    /// Call after [`Server::trigger_shutdown`] (or after a client sent the
    /// `shutdown` op — this also waits for that).
    pub fn wait(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            acceptor.join().expect("acceptor panicked");
        }
        // Drain the worker pool FIRST: the queue is closed, so the workers
        // finish every accepted job and every blocked connection thread
        // receives (and writes) its response. Only then unblock the idle
        // connection readers by shutting their sockets — never the other
        // way around, or in-flight requests would lose their responses.
        for worker in self.workers.drain(..) {
            worker.join().expect("worker panicked");
        }
        for (_, stream) in self.state.streams.lock().expect("streams poisoned").iter() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let mut live = self.state.connections.lock().expect("connections poisoned");
        while *live > 0 {
            live = self
                .state
                .connections_done
                .wait(live)
                .expect("connections poisoned");
        }
        drop(live);
    }

    /// Graceful shutdown: [`Server::trigger_shutdown`] + [`Server::wait`].
    pub fn shutdown(self) {
        self.trigger_shutdown();
        self.wait();
    }
}
