//! A hand-rolled JSON value, parser and serializer.
//!
//! The workspace builds in hermetic environments with no registry access, so
//! the service cannot depend on `serde`. This module provides the minimal
//! JSON layer the newline-delimited protocol needs: a [`Json`] tree that
//! preserves object key order (responses serialize deterministically, which
//! the equivalence tests rely on), a recursive-descent parser with full
//! string-escape handling, and a serializer via `Display`.
//!
//! Numbers are split into [`Json::Int`] (anything that lexes as an integer
//! and fits `i64`), [`Json::UInt`] (integers beyond `i64::MAX` that still
//! fit `u64` — cache keys and `u64` counters like `arena_bytes` round-trip
//! exactly instead of sliding into lossy floats) and [`Json::Float`]: solver
//! counters round-trip exactly, and floats serialize with `{:?}` so `2.0`
//! stays `2.0` instead of collapsing into an integer on re-parse.
//!
//! # Examples
//!
//! ```
//! use service::json::Json;
//!
//! let value = Json::parse(r#"{"op":"health","id":3,"p50_ms":1.5}"#).unwrap();
//! assert_eq!(value.get("op").and_then(Json::as_str), Some("health"));
//! assert_eq!(value.get("id").and_then(Json::as_i64), Some(3));
//! assert_eq!(value.to_string(), r#"{"op":"health","id":3,"p50_ms":1.5}"#);
//! ```

use std::fmt;

/// A JSON value. Objects keep their insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer number (no fraction, no exponent, fits `i64`).
    Int(i64),
    /// A non-negative integer beyond `i64::MAX` that fits `u64`. Kept as a
    /// distinct variant so 64-bit counters and hash keys survive the wire
    /// bit-exactly (a float would silently round past 2^53).
    UInt(u64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key–value pairs.
    Obj(Vec<(String, Json)>),
}

/// Error from [`Json::parse`]: a message and the byte offset it refers to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from key–value pairs, preserving their order.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer that fits `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            Json::UInt(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The integer payload as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) if *v >= 0 => Some(*v as u64),
            Json::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload widened to `f64` (integers included; `UInt`
    /// values above 2^53 lose precision here, by the nature of `f64`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::UInt(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The Boolean payload, if this is a Boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key–value pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serializes with two-space indentation — for humans (the checked-in
    /// `BENCH_service.json`); the wire always uses the compact `Display`.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.pretty_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn pretty_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.pretty_into(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    out.push_str(&Json::Str(key.clone()).to_string());
                    out.push_str(": ");
                    value.pretty_into(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
            other => out.push_str(&other.to_string()),
        }
    }

    /// Parses one JSON document; trailing non-whitespace is an error.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the offending byte offset.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after value"));
        }
        Ok(value)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected {text}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("non-ascii \\u escape"))?;
        let value =
            u16::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape digits"))?;
        self.pos = end;
        Ok(value)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let high = self.hex4()?;
                            let ch = if (0xd800..0xdc00).contains(&high) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((u32::from(high) - 0xd800) << 10)
                                        + (u32::from(low).wrapping_sub(0xdc00));
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(u32::from(high))
                            };
                            out.push(ch.ok_or_else(|| self.error("invalid \\u code point"))?);
                            continue; // pos already past the escape
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this is
                    // always on a character boundary).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    let ch = rest.chars().next().expect("peeked a byte");
                    if (ch as u32) < 0x20 {
                        return Err(self.error("unescaped control character"));
                    }
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        if integral {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
            // Beyond i64 but within u64: keep every bit (cache keys and
            // u64 stats counters must round-trip exactly).
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.error("invalid number"))
    }
}

fn escape_into(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for ch in s.chars() {
        match ch {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(v) => write!(f, "{v}"),
            Json::UInt(v) => write!(f, "{v}"),
            Json::Float(v) if v.is_finite() => write!(f, "{v:?}"),
            Json::Float(_) => write!(f, "null"), // NaN/inf are not JSON
            Json::Str(s) => escape_into(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    escape_into(f, key)?;
                    write!(f, ":{value}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        i64::try_from(v).map(Json::Int).unwrap_or(Json::UInt(v))
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::from(v as u64)
    }
}

impl From<u128> for Json {
    fn from(v: u128) -> Json {
        match (i64::try_from(v), u64::try_from(v)) {
            (Ok(v), _) => Json::Int(v),
            (_, Ok(v)) => Json::UInt(v),
            // Durations beyond u64 milliseconds do not occur in practice;
            // saturate into float rather than panic.
            _ => Json::Float(v as f64),
        }
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(text: &str) {
        let parsed = Json::parse(text).expect("parses");
        assert_eq!(parsed.to_string(), text);
        assert_eq!(Json::parse(&parsed.to_string()).expect("reparses"), parsed);
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip("null");
        roundtrip("true");
        roundtrip("false");
        roundtrip("0");
        roundtrip("-42");
        roundtrip("9223372036854775807");
        roundtrip("1.5");
        roundtrip("\"hello\"");
    }

    #[test]
    fn containers_roundtrip_and_preserve_order() {
        roundtrip(r#"[1,2,[3,"x"],{}]"#);
        roundtrip(r#"{"z":1,"a":{"nested":[true,null]},"m":-2.5}"#);
    }

    #[test]
    fn large_unsigned_integers_roundtrip_losslessly() {
        // u64::MAX and a value just past 2^53 (where f64 starts dropping
        // low bits — exactly what arena_bytes-sized counters would hit if
        // they fell back to Float).
        roundtrip("18446744073709551615");
        roundtrip("9007199254740993");
        let past_f64 = (1u64 << 53) + 1;
        assert_eq!(Json::from(past_f64), Json::Int(past_f64 as i64));
        assert_eq!(
            Json::parse(&Json::from(u64::MAX).to_string()).unwrap(),
            Json::UInt(u64::MAX)
        );
        // A wire round-trip through an object preserves every bit.
        let stats = Json::obj(vec![
            ("arena_bytes", Json::from(u64::MAX - 7)),
            ("cache_key", Json::from(0xdead_beef_dead_beefu64)),
        ]);
        let reparsed = Json::parse(&stats.to_string()).unwrap();
        assert_eq!(
            reparsed.get("arena_bytes").and_then(Json::as_u64),
            Some(u64::MAX - 7)
        );
        assert_eq!(
            reparsed.get("cache_key").and_then(Json::as_u64),
            Some(0xdead_beef_dead_beefu64)
        );
        // u128 conversions pick the tightest lossless variant.
        assert_eq!(Json::from(3u128), Json::Int(3));
        assert_eq!(Json::from(u128::from(u64::MAX)), Json::UInt(u64::MAX));
    }

    #[test]
    fn float_serialization_stays_float() {
        // 2.0 must not collapse to the integer 2 on the wire.
        assert_eq!(Json::Float(2.0).to_string(), "2.0");
        assert_eq!(Json::parse("2.0").unwrap(), Json::Float(2.0));
        assert_eq!(Json::parse("2").unwrap(), Json::Int(2));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
    }

    #[test]
    fn string_escapes() {
        let parsed = Json::parse(r#""a\"b\\c\nd\teAé""#).unwrap();
        assert_eq!(parsed, Json::Str("a\"b\\c\nd\teA\u{e9}".to_string()));
        // Serialization escapes what must be escaped and round-trips.
        let tricky = Json::Str("line1\nline2\t\"quoted\" \\ \u{1}".to_string());
        assert_eq!(Json::parse(&tricky.to_string()).unwrap(), tricky);
    }

    #[test]
    fn surrogate_pairs_decode() {
        let parsed = Json::parse(r#""😀""#).unwrap();
        assert_eq!(parsed, Json::Str("\u{1f600}".to_string()));
    }

    #[test]
    fn newline_delimited_payloads_stay_on_one_line() {
        // The protocol frames one JSON document per line; embedded newlines
        // in program source must therefore be escaped, never literal.
        let value = Json::obj(vec![("program", Json::str("int main() {\nreturn 0;\n}"))]);
        assert!(!value.to_string().contains('\n'));
    }

    #[test]
    fn pretty_output_reparses_identically() {
        let value = Json::parse(r#"{"a":[1,2,{"b":null}],"c":{},"d":[],"e":1.5}"#).unwrap();
        let pretty = value.pretty();
        assert!(pretty.contains("\n  \"a\": ["));
        assert_eq!(Json::parse(&pretty).unwrap(), value);
    }

    #[test]
    fn errors_carry_offsets() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        let err = Json::parse("   x").unwrap_err();
        assert_eq!(err.offset, 3);
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n":3,"f":1.5,"s":"x","b":true,"a":[1],"u":18446744073709551615}"#);
        let v = v.unwrap();
        assert_eq!(v.get("n").and_then(Json::as_i64), Some(3));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        // u64::MAX does not fit i64: it lexes as a lossless UInt.
        assert_eq!(v.get("u"), Some(&Json::UInt(u64::MAX)));
        assert_eq!(v.get("u").and_then(Json::as_u64), Some(u64::MAX));
        assert_eq!(v.get("u").and_then(Json::as_i64), None);
        assert_eq!(Json::Null.get("missing"), None);
    }
}
