//! Deterministic, seeded fault injection for robustness testing.
//!
//! The chaos scenario of the `loadgen` benchmark (and the service's own
//! robustness tests) need the daemon to misbehave *on demand* and
//! *reproducibly*: a worker that panics mid-job, a queue pickup that
//! stalls, a solve that suddenly takes much longer, a prepared-formula
//! build that blows up inside the single-flight cache slot. A
//! [`FaultPlan`] injects exactly those faults at seed-determined points,
//! so a failing chaos run can be replayed bit-for-bit.
//!
//! Everything is behind the `faults` cargo feature: the hook methods are
//! always *callable* (the server code stays identical), but with the
//! feature disabled every hook starts with a constant-`false` test and the
//! whole body — counter increments included — compiles away. Production
//! builds of the daemon pay nothing.
//!
//! Faults are **period + phase** driven, per hook: hook invocation `n`
//! fires when `n % period == phase`, with the phase drawn from a
//! [`prng::SplitMix64`] stream over the plan's seed. Different seeds move
//! the faults around relative to the workload; the same seed reproduces
//! them exactly. A period of 0 disables that fault.

use prng::SplitMix64;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Which faults to inject and how often.
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Phase seed: same seed + same workload = same faults.
    pub seed: u64,
    /// Every `stall_period`-th worker pickup sleeps before executing
    /// (simulates a descheduled / wedged worker). 0 disables.
    pub stall_period: u64,
    /// How long a stalled pickup sleeps.
    pub stall_ms: u64,
    /// Every `panic_period`-th job execution panics mid-flight. 0 disables.
    pub panic_period: u64,
    /// Every `delay_period`-th job execution sleeps first (simulates a
    /// pathological solve). 0 disables.
    pub delay_period: u64,
    /// How long a delayed execution sleeps.
    pub delay_ms: u64,
    /// Every `build_panic_period`-th prepared-formula build panics inside
    /// the cache's single-flight slot (exercises poisoned-slot eviction).
    /// 0 disables.
    pub build_panic_period: u64,
    /// Replica-crash fault: once this many job executions have completed,
    /// the whole replica "dies" — every open connection is severed abruptly
    /// and no graceful snapshot runs (see `Server`'s crash path). Unlike
    /// the periodic faults this fires exactly **once**; a fleet chaos run
    /// uses it to kill one replica mid-stream at a deterministic point.
    /// 0 disables.
    pub crash_after_executes: u64,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            seed: 0,
            stall_period: 0,
            stall_ms: 50,
            panic_period: 0,
            delay_period: 0,
            delay_ms: 50,
            build_panic_period: 0,
            crash_after_executes: 0,
        }
    }
}

/// A live fault-injection plan shared with a running server (see
/// [`crate::ServiceConfig::fault_plan`]). Thread-safe; the counters let a
/// chaos harness assert that faults actually fired.
#[derive(Debug)]
pub struct FaultPlan {
    config: FaultConfig,
    /// Seed-derived phases for the stall/panic/delay/build hooks.
    phases: [u64; 4],
    pickups: AtomicU64,
    executes: AtomicU64,
    builds: AtomicU64,
    injected_stalls: AtomicU64,
    injected_panics: AtomicU64,
    injected_delays: AtomicU64,
    injected_build_panics: AtomicU64,
    injected_crashes: AtomicU64,
}

/// `true` when the `faults` cargo feature is compiled in. With the feature
/// off every hook body sits behind this constant and compiles away.
const ENABLED: bool = cfg!(feature = "faults");

impl FaultPlan {
    /// Builds a plan; the seed fixes each fault's phase within its period.
    pub fn new(config: FaultConfig) -> FaultPlan {
        let mut rng = SplitMix64::seed_from_u64(config.seed);
        let phase = |rng: &mut SplitMix64, period: u64| {
            if period == 0 {
                0
            } else {
                rng.next_u64() % period
            }
        };
        let phases = [
            phase(&mut rng, config.stall_period),
            phase(&mut rng, config.panic_period),
            phase(&mut rng, config.delay_period),
            phase(&mut rng, config.build_panic_period),
        ];
        FaultPlan {
            config,
            phases,
            pickups: AtomicU64::new(0),
            executes: AtomicU64::new(0),
            builds: AtomicU64::new(0),
            injected_stalls: AtomicU64::new(0),
            injected_panics: AtomicU64::new(0),
            injected_delays: AtomicU64::new(0),
            injected_build_panics: AtomicU64::new(0),
            injected_crashes: AtomicU64::new(0),
        }
    }

    fn fires(n: u64, period: u64, phase: u64) -> bool {
        period != 0 && n % period == phase
    }

    /// Hook: a worker picked a job off the queue. May sleep (stall).
    pub fn worker_pickup(&self) {
        if !ENABLED {
            return;
        }
        let n = self.pickups.fetch_add(1, Ordering::Relaxed);
        if Self::fires(n, self.config.stall_period, self.phases[0]) {
            self.injected_stalls.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(self.config.stall_ms));
        }
    }

    /// Hook: a worker is about to execute a job. May sleep (slow solve) or
    /// panic (worker fault — the server must catch it, answer the client
    /// with a structured error, and keep the worker alive).
    pub fn execute_start(&self) {
        if !ENABLED {
            return;
        }
        let n = self.executes.fetch_add(1, Ordering::Relaxed);
        if Self::fires(n, self.config.delay_period, self.phases[2]) {
            self.injected_delays.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(self.config.delay_ms));
        }
        if Self::fires(n, self.config.panic_period, self.phases[1]) {
            self.injected_panics.fetch_add(1, Ordering::Relaxed);
            panic!("injected fault: worker panic");
        }
    }

    /// Hook: a prepared-formula build is starting inside the cache's
    /// single-flight slot. May panic (exercises poisoned-slot eviction).
    pub fn build_start(&self) {
        if !ENABLED {
            return;
        }
        let n = self.builds.fetch_add(1, Ordering::Relaxed);
        if Self::fires(n, self.config.build_panic_period, self.phases[3]) {
            self.injected_build_panics.fetch_add(1, Ordering::Relaxed);
            panic!("injected fault: build panic");
        }
    }

    /// Hook: a worker finished a job. Returns `true` exactly once, when
    /// the configured execution count has been reached — the caller (the
    /// server's worker loop) then crashes the replica abruptly. One-shot
    /// by a compare-and-swap: with several workers racing past the
    /// threshold, only one gets to pull the trigger.
    pub fn crash_check(&self) -> bool {
        if !ENABLED {
            return false;
        }
        let threshold = self.config.crash_after_executes;
        if threshold == 0 || self.executes.load(Ordering::Relaxed) < threshold {
            return false;
        }
        self.injected_crashes
            .compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Total replica crashes injected so far (0 or 1).
    pub fn injected_crashes(&self) -> u64 {
        self.injected_crashes.load(Ordering::Relaxed)
    }

    /// The plan's configuration.
    pub fn config(&self) -> FaultConfig {
        self.config
    }

    /// Total faults injected so far, by kind:
    /// `(stalls, panics, delays, build_panics)`.
    pub fn injected(&self) -> (u64, u64, u64, u64) {
        (
            self.injected_stalls.load(Ordering::Relaxed),
            self.injected_panics.load(Ordering::Relaxed),
            self.injected_delays.load(Ordering::Relaxed),
            self.injected_build_panics.load(Ordering::Relaxed),
        )
    }

    /// Total faults injected so far, summed over kinds (crashes included).
    pub fn injected_total(&self) -> u64 {
        let (a, b, c, d) = self.injected();
        a + b + c + d + self.injected_crashes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_periods_never_fire() {
        let plan = FaultPlan::new(FaultConfig::default());
        for _ in 0..100 {
            plan.worker_pickup();
            plan.execute_start();
            plan.build_start();
        }
        assert_eq!(plan.injected_total(), 0);
    }

    #[cfg(feature = "faults")]
    #[test]
    fn periodic_faults_fire_deterministically() {
        let config = FaultConfig {
            seed: 7,
            stall_period: 4,
            stall_ms: 0,
            delay_period: 3,
            delay_ms: 0,
            ..FaultConfig::default()
        };
        let run = || {
            let plan = FaultPlan::new(config);
            for _ in 0..24 {
                plan.worker_pickup();
                plan.execute_start();
            }
            plan.injected()
        };
        let first = run();
        assert_eq!(first.0, 6, "24 pickups / period 4");
        assert_eq!(first.2, 8, "24 executes / period 3");
        assert_eq!(first, run(), "same seed, same faults");
    }

    #[cfg(feature = "faults")]
    #[test]
    fn crash_fires_exactly_once_after_the_threshold() {
        let plan = FaultPlan::new(FaultConfig {
            crash_after_executes: 3,
            ..FaultConfig::default()
        });
        assert!(!plan.crash_check(), "no executes yet");
        for _ in 0..3 {
            plan.execute_start();
            // Not yet: the check races only after the count is reached.
        }
        assert!(plan.crash_check(), "threshold reached: fires");
        assert!(!plan.crash_check(), "one-shot: never fires twice");
        assert_eq!(plan.injected_crashes(), 1);
        assert_eq!(plan.injected_total(), 1);
    }

    #[cfg(feature = "faults")]
    #[test]
    fn injected_panics_carry_a_recognizable_message() {
        let plan = FaultPlan::new(FaultConfig {
            panic_period: 1,
            ..FaultConfig::default()
        });
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| plan.execute_start()))
            .unwrap_err();
        let message = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(message.contains("injected fault"));
        assert_eq!(plan.injected().1, 1);
    }
}
