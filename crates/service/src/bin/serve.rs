//! The localization daemon binary.
//!
//! ```text
//! Usage: serve [--addr HOST:PORT] [--workers N] [--cache-capacity N]
//!              [--cache-shards N] [--queue-capacity N]
//!              [--default-deadline-ms MS] [--max-deadline-ms MS]
//!              [--conflict-cap N] [--max-request-bytes N]
//!              [--read-timeout-ms MS] [--write-timeout-ms MS]
//!              [--store-dir DIR] [--no-restore]
//! ```
//!
//! Binds (default `127.0.0.1:7911`), prints the bound address on stdout and
//! serves until a client sends `{"op":"shutdown"}`, then drains every
//! accepted job and exits. See the `service` crate docs and the README's
//! "Running the localization service", "Operating under overload" and
//! "Running a fleet" sections for the wire protocol and the
//! budget/robustness knobs.
//!
//! `--no-restore` skips the eager restore-on-boot scan of `--store-dir`:
//! the disk tier is consulted lazily per request instead (first repeat
//! request answers with `tier:"store"`), trading first-hit latency for an
//! instant boot. Each replica of a fleet needs its **own** `--store-dir`;
//! a directory already owned by a live daemon is refused at startup.

use service::{Server, ServiceConfig};

fn usage() -> ! {
    eprintln!(
        "usage: serve [--addr HOST:PORT] [--workers N] [--cache-capacity N] \
         [--cache-shards N] [--queue-capacity N] [--default-deadline-ms MS] \
         [--max-deadline-ms MS] [--conflict-cap N] [--max-request-bytes N] \
         [--read-timeout-ms MS] [--write-timeout-ms MS] [--store-dir DIR] \
         [--no-restore]"
    );
    std::process::exit(2);
}

fn parse_count(value: Option<String>, flag: &str) -> usize {
    match value
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
    {
        Some(n) => n,
        None => {
            eprintln!("{flag} needs a positive integer");
            usage();
        }
    }
}

fn parse_u64(value: Option<String>, flag: &str) -> u64 {
    match value
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&n| n >= 1)
    {
        Some(n) => n,
        None => {
            eprintln!("{flag} needs a positive integer");
            usage();
        }
    }
}

fn main() {
    let mut config = ServiceConfig {
        addr: "127.0.0.1:7911".to_string(),
        ..ServiceConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(addr) => config.addr = addr,
                None => usage(),
            },
            "--workers" => config.workers = parse_count(args.next(), "--workers"),
            "--cache-capacity" => {
                config.cache_capacity = parse_count(args.next(), "--cache-capacity");
            }
            "--cache-shards" => config.cache_shards = parse_count(args.next(), "--cache-shards"),
            "--queue-capacity" => {
                config.queue_capacity = parse_count(args.next(), "--queue-capacity");
            }
            "--default-deadline-ms" => {
                config.default_deadline_ms = Some(parse_u64(args.next(), "--default-deadline-ms"));
            }
            "--max-deadline-ms" => {
                config.max_deadline_ms = Some(parse_u64(args.next(), "--max-deadline-ms"));
            }
            "--conflict-cap" => {
                config.conflict_cap = Some(parse_u64(args.next(), "--conflict-cap"));
            }
            "--max-request-bytes" => {
                config.max_request_bytes = parse_count(args.next(), "--max-request-bytes");
            }
            "--read-timeout-ms" => {
                config.read_timeout_ms = Some(parse_u64(args.next(), "--read-timeout-ms"));
            }
            "--write-timeout-ms" => {
                config.write_timeout_ms = Some(parse_u64(args.next(), "--write-timeout-ms"));
            }
            "--store-dir" => match args.next() {
                Some(dir) => config.store_dir = Some(dir),
                None => usage(),
            },
            "--no-restore" => config.restore_on_boot = false,
            _ => usage(),
        }
    }

    let workers = config.workers;
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!("localization service listening on {}", server.local_addr());
    eprintln!("{workers} workers; send {{\"op\":\"shutdown\"}} to stop");
    server.wait();
    eprintln!("drained and stopped");
}
