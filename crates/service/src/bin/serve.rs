//! The localization daemon binary.
//!
//! ```text
//! Usage: serve [--addr HOST:PORT] [--workers N] [--cache-capacity N]
//!              [--cache-shards N] [--queue-capacity N]
//! ```
//!
//! Binds (default `127.0.0.1:7911`), prints the bound address on stdout and
//! serves until a client sends `{"op":"shutdown"}`, then drains every
//! accepted job and exits. See the `service` crate docs and the README's
//! "Running the localization service" section for the wire protocol.

use service::{Server, ServiceConfig};

fn usage() -> ! {
    eprintln!(
        "usage: serve [--addr HOST:PORT] [--workers N] [--cache-capacity N] \
         [--cache-shards N] [--queue-capacity N]"
    );
    std::process::exit(2);
}

fn parse_count(value: Option<String>, flag: &str) -> usize {
    match value
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
    {
        Some(n) => n,
        None => {
            eprintln!("{flag} needs a positive integer");
            usage();
        }
    }
}

fn main() {
    let mut config = ServiceConfig {
        addr: "127.0.0.1:7911".to_string(),
        ..ServiceConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(addr) => config.addr = addr,
                None => usage(),
            },
            "--workers" => config.workers = parse_count(args.next(), "--workers"),
            "--cache-capacity" => {
                config.cache_capacity = parse_count(args.next(), "--cache-capacity");
            }
            "--cache-shards" => config.cache_shards = parse_count(args.next(), "--cache-shards"),
            "--queue-capacity" => {
                config.queue_capacity = parse_count(args.next(), "--queue-capacity");
            }
            _ => usage(),
        }
    }

    let workers = config.workers;
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!("localization service listening on {}", server.local_addr());
    eprintln!("{workers} workers; send {{\"op\":\"shutdown\"}} to stop");
    server.wait();
    eprintln!("drained and stopped");
}
