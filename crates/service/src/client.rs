//! A blocking client for the localization daemon.
//!
//! One [`Client`] wraps one TCP connection and speaks the newline-delimited
//! protocol synchronously: write a request line, read the matching response
//! line. The tests, the load generator and external callers all go through
//! this type, so the client-side encoding is exercised by the same suite
//! that exercises the server-side decoding.
//!
//! For concurrency, open one client per thread — the daemon handles any
//! number of connections, and its worker pool (not the connection count)
//! bounds the CPU actually used.

use crate::json::Json;
use crate::protocol::{encode_request, Envelope, Job, Request};
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Errors a client call can produce.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read or write).
    Io(std::io::Error),
    /// The response line was not valid protocol JSON.
    Protocol(String),
    /// The daemon answered `ok: false` with this message.
    Server(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// The result of a `localize` or `batch` call.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Whether the daemon served the job from its prepared-formula cache.
    pub cache_hit: bool,
    /// Milliseconds the daemon spent building the prepared localizer for
    /// this request (0 on a cache hit).
    pub build_ms: u64,
    /// Cache key of the prepared entry that served this request — pass it
    /// as `prev_key` to [`Client::revise`] after editing the program.
    pub key: u64,
    /// The `report` (localize) or `ranked` (batch) payload.
    pub body: Json,
}

/// The result of a `revise` call: an [`Outcome`] plus the delta-prepare
/// verdict.
#[derive(Clone, Debug)]
pub struct ReviseOutcome {
    /// The underlying localize outcome ([`Outcome::key`] is the *new*
    /// entry's key — chain it into the next revision).
    pub outcome: Outcome,
    /// The daemon's classification of the edit, e.g. `line_shift`,
    /// `dead_function`, `function_rebuild`, `global_rebuild`,
    /// `prev_missing`, `options_changed` or `cache_hit`.
    pub delta: String,
    /// `true` when the pre-edit bit-blasted preparation was reused (no
    /// function re-encoded).
    pub reused: bool,
    /// `false` when the daemon answered by remapping/replaying a
    /// remembered report — no MAX-SAT enumeration ran at all.
    pub solved: bool,
}

/// A blocking connection to the localization daemon.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
            next_id: 1,
        })
    }

    /// Sends one request and reads the matching response object.
    fn call(&mut self, request: Request) -> Result<Json, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let line = encode_request(&Envelope { id, request });
        self.writer.write_all(format!("{line}\n").as_bytes())?;
        let mut response = String::new();
        if self.reader.read_line(&mut response)? == 0 {
            return Err(ClientError::Protocol(
                "connection closed before a response arrived".to_string(),
            ));
        }
        let value =
            Json::parse(response.trim_end()).map_err(|e| ClientError::Protocol(e.to_string()))?;
        if value.get("id").and_then(Json::as_u64) != Some(id) {
            return Err(ClientError::Protocol(format!(
                "response id does not match request id {id}: {value}"
            )));
        }
        match value.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(value),
            Some(false) => Err(ClientError::Server(
                value
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown server error")
                    .to_string(),
            )),
            None => Err(ClientError::Protocol(format!(
                "response has no ok field: {value}"
            ))),
        }
    }

    fn outcome(value: Json, payload_key: &str) -> Result<Outcome, ClientError> {
        let cache_hit = match value.get("cache").and_then(Json::as_str) {
            Some("hit") => true,
            Some("miss") => false,
            _ => {
                return Err(ClientError::Protocol(format!(
                    "response has no cache field: {value}"
                )))
            }
        };
        let build_ms = value.get("build_ms").and_then(Json::as_u64).unwrap_or(0);
        let key = value
            .get("key")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol(format!("response has no key field: {value}")))?;
        let body = value
            .get(payload_key)
            .cloned()
            .ok_or_else(|| ClientError::Protocol(format!("missing {payload_key}: {value}")))?;
        Ok(Outcome {
            cache_hit,
            build_ms,
            key,
            body,
        })
    }

    /// Localizes the single failing input of `job`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] carries daemon-side failures (parse, type,
    /// encode or localization errors) verbatim.
    pub fn localize(&mut self, job: Job) -> Result<Outcome, ClientError> {
        let value = self.call(Request::Localize(job))?;
        Self::outcome(value, "report")
    }

    /// Localizes every input of `job` and returns the merged ranking.
    ///
    /// # Errors
    ///
    /// See [`Client::localize`].
    pub fn batch(&mut self, job: Job) -> Result<Outcome, ClientError> {
        let value = self.call(Request::Batch(job))?;
        Self::outcome(value, "ranked")
    }

    /// Localizes the single failing input of `job` — an *edited* revision
    /// of a program previously served under `prev_key` — letting the daemon
    /// delta-prepare against the cached pre-edit entry. The report is
    /// byte-identical to what a plain [`Client::localize`] of the same
    /// source would return; only the preparation cost differs.
    ///
    /// # Errors
    ///
    /// See [`Client::localize`].
    pub fn revise(&mut self, job: Job, prev_key: u64) -> Result<ReviseOutcome, ClientError> {
        let value = self.call(Request::Revise { job, prev_key })?;
        let delta = value
            .get("delta")
            .and_then(Json::as_str)
            .ok_or_else(|| ClientError::Protocol(format!("revise without delta: {value}")))?
            .to_string();
        let reused = value
            .get("reused")
            .and_then(Json::as_bool)
            .ok_or_else(|| ClientError::Protocol(format!("revise without reused: {value}")))?;
        let solved = value
            .get("solved")
            .and_then(Json::as_bool)
            .ok_or_else(|| ClientError::Protocol(format!("revise without solved: {value}")))?;
        let outcome = Self::outcome(value, "report")?;
        Ok(ReviseOutcome {
            outcome,
            delta,
            reused,
            solved,
        })
    }

    /// Liveness probe; returns the daemon's uptime in milliseconds.
    ///
    /// # Errors
    ///
    /// Fails only on transport or protocol errors.
    pub fn health(&mut self) -> Result<u64, ClientError> {
        let value = self.call(Request::Health)?;
        value
            .get("uptime_ms")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol(format!("health without uptime_ms: {value}")))
    }

    /// The daemon's cache/queue/solver counters, as raw JSON.
    ///
    /// # Errors
    ///
    /// Fails only on transport or protocol errors.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.call(Request::Stats)
    }

    /// Asks the daemon to drain and exit. The daemon acknowledges, then
    /// closes this connection.
    ///
    /// # Errors
    ///
    /// Fails only on transport or protocol errors.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.call(Request::Shutdown).map(|_| ())
    }
}
