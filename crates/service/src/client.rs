//! A blocking client for the localization daemon.
//!
//! One [`Client`] wraps one TCP connection and speaks the newline-delimited
//! protocol synchronously: write a request line, read the matching response
//! line. The tests, the load generator and external callers all go through
//! this type, so the client-side encoding is exercised by the same suite
//! that exercises the server-side decoding.
//!
//! For concurrency, open one client per thread — the daemon handles any
//! number of connections, and its worker pool (not the connection count)
//! bounds the CPU actually used.
//!
//! # Robustness
//!
//! [`Client::connect_with`] takes a [`ClientConfig`] with a connect
//! timeout, a per-request timeout (applied as socket read/write timeouts)
//! and a retry budget. Every protocol operation is **idempotent** — the
//! solver is deterministic and the daemon's cache key ignores request
//! identity — so a transport failure (connection reset, timeout,
//! truncated response) or an `overloaded` shed is safely retried with
//! jittered exponential backoff: the connection is re-established and the
//! request re-sent. The jitter stream is seeded, so test runs stay
//! reproducible.

use crate::json::Json;
use crate::protocol::{encode_request, Envelope, Job, Request};
use prng::SplitMix64;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Errors a client call can produce.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read or write).
    Io(std::io::Error),
    /// The response line was not valid protocol JSON.
    Protocol(String),
    /// The daemon answered `ok: false`.
    Server {
        /// Machine-readable error class (`overloaded`, `deadline_exceeded`,
        /// `parse_error`, `internal_error`, …); `"unknown"` for responses
        /// from daemons predating the field.
        kind: String,
        /// Human-readable message.
        message: String,
    },
    /// The retry loop ran out of the *job's own* `deadline_ms` budget:
    /// sleeping out the next backoff would blow past the deadline, so the
    /// client gives up early instead of delivering a late answer. Carries
    /// the last underlying failure for diagnosis.
    DeadlineExceeded {
        /// The last transport/shed error the retry loop was backing off
        /// from, rendered.
        last_error: String,
    },
}

impl ClientError {
    /// The machine-readable error kind, if one applies. Client-side
    /// deadline exhaustion reports the same `deadline_exceeded` kind the
    /// daemon uses for jobs that expired in its queue — callers classify
    /// both the same way.
    pub fn kind(&self) -> Option<&str> {
        match self {
            ClientError::Server { kind, .. } => Some(kind),
            ClientError::DeadlineExceeded { .. } => Some("deadline_exceeded"),
            _ => None,
        }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server { kind, message } => write!(f, "server error ({kind}): {message}"),
            ClientError::DeadlineExceeded { last_error } => write!(
                f,
                "deadline exceeded: retry budget exhausted by the job's own \
                 deadline_ms (last error: {last_error})"
            ),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// Transport knobs of a [`Client`]. The default has no timeouts and no
/// retries — exactly the pre-robustness behaviour.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Bound on establishing the TCP connection.
    pub connect_timeout: Option<Duration>,
    /// Bound on each socket read/write while waiting for a response. A slow
    /// or wedged daemon surfaces as [`ClientError::Io`] with
    /// `WouldBlock`/`TimedOut` instead of hanging the caller forever.
    pub request_timeout: Option<Duration>,
    /// How many times a failed idempotent request is retried (0 = never).
    /// Transport errors reconnect first; `overloaded` sheds just back off.
    pub retries: u32,
    /// Base of the exponential backoff: attempt `n` sleeps
    /// `retry_base * 2^n` plus a uniform jitter of up to one `retry_base`.
    pub retry_base: Duration,
    /// Seed of the jitter stream (deterministic backoff in tests).
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_timeout: None,
            request_timeout: None,
            retries: 0,
            retry_base: Duration::from_millis(50),
            seed: 0,
        }
    }
}

/// The result of a `localize` or `batch` call.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Whether the daemon served the job from its prepared-formula cache.
    pub cache_hit: bool,
    /// Which tier satisfied the preparation: `"memory"` (the in-memory
    /// cache), `"store"` (the persistent disk tier) or `"built"` (a cold
    /// build); `"unknown"` for daemons predating the field.
    pub tier: String,
    /// Milliseconds the daemon spent building the prepared localizer for
    /// this request (0 on a cache hit).
    pub build_ms: u64,
    /// Cache key of the prepared entry that served this request — pass it
    /// as `prev_key` to [`Client::revise`] after editing the program.
    pub key: u64,
    /// The `report` (localize) or `ranked` (batch) payload.
    pub body: Json,
}

/// The result of a `revise` call: an [`Outcome`] plus the delta-prepare
/// verdict.
#[derive(Clone, Debug)]
pub struct ReviseOutcome {
    /// The underlying localize outcome ([`Outcome::key`] is the *new*
    /// entry's key — chain it into the next revision).
    pub outcome: Outcome,
    /// The daemon's classification of the edit, e.g. `line_shift`,
    /// `dead_function`, `function_rebuild`, `global_rebuild`,
    /// `prev_missing`, `options_changed` or `cache_hit`.
    pub delta: String,
    /// `true` when the pre-edit bit-blasted preparation was reused (no
    /// function re-encoded).
    pub reused: bool,
    /// `false` when the daemon answered by remapping/replaying a
    /// remembered report — no MAX-SAT enumeration ran at all.
    pub solved: bool,
}

/// A blocking connection to the localization daemon.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
    /// The resolved address, kept for retry reconnects.
    addr: SocketAddr,
    config: ClientConfig,
    jitter: SplitMix64,
}

impl Client {
    /// Connects to a daemon with default transport knobs (no timeouts, no
    /// retries).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connects to a daemon with explicit timeouts and retry policy.
    ///
    /// # Errors
    ///
    /// Propagates connection failures (including connect timeout).
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> Result<Client, ClientError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ClientError::Protocol("address resolved to nothing".to_string()))?;
        let (reader, writer) = Self::open(addr, &config)?;
        let jitter = SplitMix64::seed_from_u64(config.seed);
        Ok(Client {
            reader,
            writer,
            next_id: 1,
            addr,
            config,
            jitter,
        })
    }

    fn open(
        addr: SocketAddr,
        config: &ClientConfig,
    ) -> Result<(BufReader<TcpStream>, TcpStream), ClientError> {
        let stream = match config.connect_timeout {
            Some(timeout) => TcpStream::connect_timeout(&addr, timeout)?,
            None => TcpStream::connect(addr)?,
        };
        stream.set_read_timeout(config.request_timeout)?;
        stream.set_write_timeout(config.request_timeout)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok((reader, stream))
    }

    /// Drops the (possibly broken) connection and dials a fresh one.
    fn reconnect(&mut self) -> Result<(), ClientError> {
        let (reader, writer) = Self::open(self.addr, &self.config)?;
        self.reader = reader;
        self.writer = writer;
        Ok(())
    }

    /// Sends one request and reads the matching response object, without
    /// retrying.
    fn call_once(&mut self, request: &Request) -> Result<Json, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let line = encode_request(&Envelope {
            id,
            request: request.clone(),
        });
        self.writer.write_all(format!("{line}\n").as_bytes())?;
        let mut response = String::new();
        if self.reader.read_line(&mut response)? == 0 {
            // A truncated exchange is a transport failure (the daemon died,
            // or a middlebox cut the connection) — classified as Io so the
            // retry loop treats it like any other broken pipe.
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before a response arrived",
            )));
        }
        let value =
            Json::parse(response.trim_end()).map_err(|e| ClientError::Protocol(e.to_string()))?;
        if value.get("id").and_then(Json::as_u64) != Some(id) {
            return Err(ClientError::Protocol(format!(
                "response id does not match request id {id}: {value}"
            )));
        }
        match value.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(value),
            Some(false) => Err(ClientError::Server {
                kind: value
                    .get("kind")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
                message: value
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown server error")
                    .to_string(),
            }),
            None => Err(ClientError::Protocol(format!(
                "response has no ok field: {value}"
            ))),
        }
    }

    /// [`Client::call_once`] plus the retry loop for idempotent requests:
    /// transport failures reconnect and resend, `overloaded` sheds back
    /// off and resend, everything else (and an exhausted budget) returns
    /// the error.
    ///
    /// A job that carries its own `deadline_ms` additionally caps the
    /// retry loop's **total wall time**: when the next backoff sleep would
    /// land past the deadline, the loop stops with a client-side
    /// [`ClientError::DeadlineExceeded`] instead of retrying an answer the
    /// caller can no longer use. (Without the cap, `retries` exponential
    /// backoffs against a down daemon could block for far longer than the
    /// job's whole budget.)
    fn call(&mut self, request: Request) -> Result<Json, ClientError> {
        let budget = match &request {
            Request::Localize(job) | Request::Batch(job) | Request::Revise { job, .. } => {
                job.deadline_ms.map(Duration::from_millis)
            }
            _ => None,
        };
        let started = Instant::now();
        let mut attempt = 0u32;
        loop {
            let result = self.call_once(&request);
            let (err, reconnect) = match result {
                Ok(value) => return Ok(value),
                Err(err @ ClientError::Io(_)) => (err, true),
                Err(err) if err.kind() == Some("overloaded") => (err, false),
                Err(err) => return Err(err),
            };
            if attempt >= self.config.retries {
                return Err(err);
            }
            let base = self.config.retry_base;
            let jitter_ms = if base.as_millis() == 0 {
                0
            } else {
                self.jitter.gen_range(0..=base.as_millis() as u64)
            };
            let backoff = base * 2u32.saturating_pow(attempt) + Duration::from_millis(jitter_ms);
            if let Some(budget) = budget {
                if started.elapsed() + backoff >= budget {
                    return Err(ClientError::DeadlineExceeded {
                        last_error: err.to_string(),
                    });
                }
            }
            std::thread::sleep(backoff);
            if reconnect {
                self.reconnect()?;
            }
            attempt += 1;
        }
    }

    fn outcome(value: Json, payload_key: &str) -> Result<Outcome, ClientError> {
        let cache_hit = match value.get("cache").and_then(Json::as_str) {
            Some("hit") => true,
            Some("miss") => false,
            _ => {
                return Err(ClientError::Protocol(format!(
                    "response has no cache field: {value}"
                )))
            }
        };
        let tier = value
            .get("tier")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string();
        let build_ms = value.get("build_ms").and_then(Json::as_u64).unwrap_or(0);
        let key = value
            .get("key")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol(format!("response has no key field: {value}")))?;
        let body = value
            .get(payload_key)
            .cloned()
            .ok_or_else(|| ClientError::Protocol(format!("missing {payload_key}: {value}")))?;
        Ok(Outcome {
            cache_hit,
            tier,
            build_ms,
            key,
            body,
        })
    }

    /// Localizes the single failing input of `job`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] carries daemon-side failures (parse, type,
    /// encode or localization errors) verbatim, with a machine-readable
    /// `kind`.
    pub fn localize(&mut self, job: Job) -> Result<Outcome, ClientError> {
        let value = self.call(Request::Localize(job))?;
        Self::outcome(value, "report")
    }

    /// Localizes every input of `job` and returns the merged ranking.
    ///
    /// # Errors
    ///
    /// See [`Client::localize`].
    pub fn batch(&mut self, job: Job) -> Result<Outcome, ClientError> {
        let value = self.call(Request::Batch(job))?;
        Self::outcome(value, "ranked")
    }

    /// Localizes the single failing input of `job` — an *edited* revision
    /// of a program previously served under `prev_key` — letting the daemon
    /// delta-prepare against the cached pre-edit entry. The report is
    /// byte-identical to what a plain [`Client::localize`] of the same
    /// source would return; only the preparation cost differs.
    ///
    /// # Errors
    ///
    /// See [`Client::localize`].
    pub fn revise(&mut self, job: Job, prev_key: u64) -> Result<ReviseOutcome, ClientError> {
        let value = self.call(Request::Revise { job, prev_key })?;
        let delta = value
            .get("delta")
            .and_then(Json::as_str)
            .ok_or_else(|| ClientError::Protocol(format!("revise without delta: {value}")))?
            .to_string();
        let reused = value
            .get("reused")
            .and_then(Json::as_bool)
            .ok_or_else(|| ClientError::Protocol(format!("revise without reused: {value}")))?;
        let solved = value
            .get("solved")
            .and_then(Json::as_bool)
            .ok_or_else(|| ClientError::Protocol(format!("revise without solved: {value}")))?;
        let outcome = Self::outcome(value, "report")?;
        Ok(ReviseOutcome {
            outcome,
            delta,
            reused,
            solved,
        })
    }

    /// Lints a program without encoding it: returns the daemon's
    /// structured diagnostics array (objects with `line`, `kind`,
    /// `severity`, `message`), sorted by line. `width` is the encoding
    /// width the truncation lint checks literals against.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with kind `parse_error` when the program
    /// does not parse; transport and protocol errors as usual.
    pub fn analyze(
        &mut self,
        program: impl Into<String>,
        width: usize,
    ) -> Result<Json, ClientError> {
        let value = self.call(Request::Analyze {
            program: program.into(),
            width,
        })?;
        value
            .get("diagnostics")
            .cloned()
            .ok_or_else(|| ClientError::Protocol(format!("analyze without diagnostics: {value}")))
    }

    /// Liveness probe; returns the daemon's uptime in milliseconds.
    ///
    /// # Errors
    ///
    /// Fails only on transport or protocol errors.
    pub fn health(&mut self) -> Result<u64, ClientError> {
        let value = self.call(Request::Health)?;
        value
            .get("uptime_ms")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol(format!("health without uptime_ms: {value}")))
    }

    /// The full `health` response object: liveness plus the load signals a
    /// fleet router reads to avoid struggling replicas — `queue_depth`,
    /// `queue_capacity`, `active_lanes`, `shed`, `expired`, `shed_rate`
    /// and the `store` restore/write status.
    ///
    /// # Errors
    ///
    /// Fails only on transport or protocol errors.
    pub fn health_report(&mut self) -> Result<Json, ClientError> {
        self.call(Request::Health)
    }

    /// The daemon's cache/queue/solver counters, as raw JSON.
    ///
    /// # Errors
    ///
    /// Fails only on transport or protocol errors.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.call(Request::Stats)
    }

    /// The same counters in Prometheus text exposition format, ready to
    /// relay to a scraper.
    ///
    /// # Errors
    ///
    /// Fails only on transport or protocol errors.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let value = self.call(Request::Metrics)?;
        value
            .get("text")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError::Protocol(format!("metrics without text: {value}")))
    }

    /// Asks the daemon to drain and exit. The daemon acknowledges, then
    /// closes this connection. Never retried (a retry would race the
    /// daemon's own teardown of this connection).
    ///
    /// # Errors
    ///
    /// Fails only on transport or protocol errors.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.call_once(&Request::Shutdown).map(|_| ())
    }
}
