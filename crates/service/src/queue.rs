//! A bounded blocking MPMC queue with per-client fair-queuing lanes.
//!
//! The daemon's connection threads are the producers (one push per
//! localize/batch request) and the fixed worker pool is the consumer side.
//! The queue is **bounded**: when a lane is at its fair share (or the queue
//! is at total capacity), [`JobQueue::push`] blocks the connection thread,
//! which in turn stops reading from its socket — backpressure propagates to
//! the client through TCP instead of letting an aggressive load spike
//! buffer unbounded work in memory.
//!
//! # Fair queuing
//!
//! Items are tagged with a *lane* (the requesting `client_id`; unidentified
//! traffic shares the [`DEFAULT_LANE`]). Consumers drain lanes with
//! **deficit round-robin**: a cursor walks the active lanes, each visit
//! credits the lane one quantum of deficit and dequeues while the deficit
//! covers the per-item cost. All jobs cost one unit here, so the schedule
//! degenerates to strict round-robin across lanes — one job per lane per
//! pass — but the deficit bookkeeping is kept so weighted lanes or sized
//! jobs are a constant away. A lane that drains empty is removed (and its
//! deficit forfeited, the classic DRR rule that stops an idle lane from
//! banking priority).
//!
//! Admission is fair-share bounded: with `n` active lanes each lane may
//! hold at most `max(1, capacity / n)` items. A single greedy client
//! therefore saturates only *its own* lane — its excess traffic blocks or
//! sheds — while polite clients' lanes stay shallow and keep their latency.
//! With one lane (the pre-fair-queuing regime) the share equals the whole
//! capacity, so single-tenant behavior is unchanged.
//!
//! Shutdown is cooperative: [`JobQueue::close`] wakes every blocked thread;
//! producers get [`PushError`], consumers drain the remaining items across
//! all lanes (still in round-robin order) and then receive `None`.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Lane shared by all requests that carry no `client_id`.
pub const DEFAULT_LANE: &str = "";

/// DRR quantum credited per lane visit. Every item costs one unit, so one
/// quantum buys exactly one dequeue per pass.
const QUANTUM: u64 = 1;

/// Error returned by [`JobQueue::push`] once the queue is closed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PushError;

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job queue is closed")
    }
}

impl std::error::Error for PushError {}

/// Error returned by [`JobQueue::try_push`], carrying the rejected item
/// back so the caller can answer its client instead of dropping it.
#[derive(Debug, PartialEq, Eq)]
pub enum TryPushError<T> {
    /// The lane (or the whole queue) was at capacity; admission control
    /// should shed the job.
    Full(T),
    /// The queue was closed; the daemon is shutting down.
    Closed(T),
}

#[derive(Debug)]
struct Lane<T> {
    id: String,
    items: VecDeque<T>,
    deficit: u64,
}

#[derive(Debug)]
struct QueueState<T> {
    /// Active (non-empty) lanes, in creation order. Invariant: every lane
    /// in this vector holds at least one item — a lane that drains is
    /// removed on the spot, so `lanes.len()` *is* the active-lane count.
    lanes: Vec<Lane<T>>,
    /// DRR cursor: index of the lane the next pop visits.
    cursor: usize,
    /// Total items across all lanes.
    total: usize,
    closed: bool,
    /// Total number of items ever accepted (for the stats endpoint).
    enqueued: u64,
}

impl<T> QueueState<T> {
    fn lane_index(&self, lane: &str) -> Option<usize> {
        self.lanes.iter().position(|l| l.id == lane)
    }

    /// Fair-share bound for `lane`, counting it as active even if it has
    /// no items yet (a first push must not see an inflated share).
    fn fair_share(&self, lane: &str, capacity: usize) -> usize {
        let active = self.lanes.len() + usize::from(self.lane_index(lane).is_none());
        (capacity / active.max(1)).max(1)
    }

    fn lane_depth(&self, lane: &str) -> usize {
        self.lane_index(lane)
            .map_or(0, |i| self.lanes[i].items.len())
    }

    /// `true` while `lane` may not accept another item.
    fn lane_full(&self, lane: &str, capacity: usize) -> bool {
        self.total >= capacity || self.lane_depth(lane) >= self.fair_share(lane, capacity)
    }

    fn accept(&mut self, lane: &str, item: T) {
        match self.lane_index(lane) {
            Some(i) => self.lanes[i].items.push_back(item),
            None => self.lanes.push(Lane {
                id: lane.to_string(),
                items: VecDeque::from([item]),
                deficit: 0,
            }),
        }
        self.total += 1;
        self.enqueued += 1;
    }
}

/// A bounded blocking multi-producer multi-consumer queue with per-lane
/// deficit-round-robin scheduling (see the module docs).
#[derive(Debug)]
pub struct JobQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// Creates a queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> JobQueue<T> {
        JobQueue {
            state: Mutex::new(QueueState {
                lanes: Vec::new(),
                cursor: 0,
                total: 0,
                closed: false,
                enqueued: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The maximum number of waiting items across all lanes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of items currently waiting, summed over lanes.
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue poisoned").total
    }

    /// Number of items waiting in one lane.
    pub fn lane_depth(&self, lane: &str) -> usize {
        self.state.lock().expect("queue poisoned").lane_depth(lane)
    }

    /// Number of lanes that currently hold at least one item.
    pub fn active_lanes(&self) -> usize {
        self.state.lock().expect("queue poisoned").lanes.len()
    }

    /// Depth of the deepest lane (0 when idle) — the fairness headline:
    /// under a single-client flood this approaches the flooder's fair
    /// share, not the whole capacity.
    pub fn max_lane_depth(&self) -> usize {
        let state = self.state.lock().expect("queue poisoned");
        state.lanes.iter().map(|l| l.items.len()).max().unwrap_or(0)
    }

    /// Current fair-share bound per lane: `max(1, capacity / active_lanes)`.
    pub fn fair_share(&self) -> usize {
        let state = self.state.lock().expect("queue poisoned");
        (self.capacity / state.lanes.len().max(1)).max(1)
    }

    /// Total number of items ever accepted.
    pub fn enqueued(&self) -> u64 {
        self.state.lock().expect("queue poisoned").enqueued
    }

    /// Enqueues an item on the [`DEFAULT_LANE`], blocking while that lane
    /// is at its fair share (backpressure).
    ///
    /// # Errors
    ///
    /// Returns [`PushError`] (with the item lost) if the queue was closed
    /// before space became available.
    pub fn push(&self, item: T) -> Result<(), PushError> {
        self.push_lane(DEFAULT_LANE, item)
    }

    /// Enqueues an item on `lane`, blocking while the lane is at its fair
    /// share or the queue at total capacity (backpressure).
    ///
    /// # Errors
    ///
    /// Returns [`PushError`] (with the item lost) if the queue was closed
    /// before space became available.
    pub fn push_lane(&self, lane: &str, item: T) -> Result<(), PushError> {
        let mut state = self.state.lock().expect("queue poisoned");
        while state.lane_full(lane, self.capacity) && !state.closed {
            state = self.not_full.wait(state).expect("queue poisoned");
        }
        if state.closed {
            return Err(PushError);
        }
        state.accept(lane, item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues on the [`DEFAULT_LANE`] **without blocking**: a full lane
    /// is an immediate [`TryPushError::Full`] instead of backpressure.
    /// Deadline-carrying jobs go through this path — blocking a connection
    /// thread on a saturated queue could hold the job past its own
    /// deadline, so the daemon sheds it (an `overloaded` error) and lets
    /// the client retry.
    ///
    /// # Errors
    ///
    /// Returns the item back inside [`TryPushError`].
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        self.try_push_lane(DEFAULT_LANE, item)
    }

    /// Enqueues on `lane` **without blocking**; see [`JobQueue::try_push`].
    /// Fair-share shedding is what isolates tenants: the reject fires when
    /// *this lane* is over its share, so a greedy client is shed while
    /// polite lanes keep accepting.
    ///
    /// # Errors
    ///
    /// Returns the item back inside [`TryPushError`].
    pub fn try_push_lane(&self, lane: &str, item: T) -> Result<(), TryPushError<T>> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Err(TryPushError::Closed(item));
        }
        if state.lane_full(lane, self.capacity) {
            return Err(TryPushError::Full(item));
        }
        state.accept(lane, item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the next item in deficit-round-robin order, blocking while
    /// the queue is empty. Returns `None` only once the queue is closed
    /// **and** fully drained (across every lane), so no accepted job is
    /// ever dropped during a graceful shutdown.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if state.total > 0 {
                // Every lane in the vector is non-empty, so the cursor's
                // lane is always servable: credit a quantum, take one item.
                let i = state.cursor % state.lanes.len();
                let lane = &mut state.lanes[i];
                lane.deficit += QUANTUM;
                let item = lane.items.pop_front().expect("active lane non-empty");
                lane.deficit -= 1; // unit cost per job
                if lane.items.is_empty() {
                    // DRR empty-lane rule: the lane leaves the schedule and
                    // forfeits its residual deficit. The cursor stays put —
                    // the removal shifts the next lane into this slot.
                    state.lanes.remove(i);
                    if state.lanes.is_empty() {
                        state.cursor = 0;
                    } else {
                        state.cursor = i % state.lanes.len();
                    }
                } else {
                    state.cursor = (i + 1) % state.lanes.len();
                }
                state.total -= 1;
                drop(state);
                // Freed space may unblock pushers on several different
                // lanes (a drained lane raises every other lane's fair
                // share), so the single-waiter wake-up is not enough.
                self.not_full.notify_all();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue poisoned");
        }
    }

    /// Closes the queue: producers start failing, consumers drain and exit.
    /// Idempotent.
    ///
    /// Shutdown-under-backpressure invariant (regression-pinned by
    /// `closing_a_saturated_queue_unblocks_every_pusher`): the wake-up must
    /// cover **both** condvars. Producers blocked on a *full* lane wait on
    /// `not_full`; if close only notified `not_empty`, those connection
    /// threads would sleep forever — no consumer ever pops once the workers
    /// start exiting, so nothing else would wake them and shutdown would
    /// deadlock. The `closed` flag is written under the state lock *before*
    /// either notification, so a producer that re-checks its predicate
    /// after waking (or that is just arriving) always observes it.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// `true` once [`JobQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue poisoned").closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_within_capacity() {
        let queue = JobQueue::new(4);
        for i in 0..4 {
            queue.push(i).unwrap();
        }
        assert_eq!(queue.depth(), 4);
        assert_eq!(queue.enqueued(), 4);
        for i in 0..4 {
            assert_eq!(queue.pop(), Some(i));
        }
    }

    #[test]
    fn push_blocks_until_a_slot_frees() {
        let queue = Arc::new(JobQueue::new(1));
        queue.push(0u64).unwrap();
        let producer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.push(1).unwrap())
        };
        // The producer is blocked on the full queue; popping unblocks it.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(queue.depth(), 1, "second push must be waiting");
        assert_eq!(queue.pop(), Some(0));
        producer.join().unwrap();
        assert_eq!(queue.pop(), Some(1));
    }

    #[test]
    fn close_wakes_producers_and_drains_consumers() {
        let queue = Arc::new(JobQueue::new(1));
        queue.push(7u64).unwrap();
        let blocked_producer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.push(8))
        };
        std::thread::sleep(Duration::from_millis(20));
        queue.close();
        assert_eq!(blocked_producer.join().unwrap(), Err(PushError));
        assert_eq!(queue.push(9), Err(PushError));
        // The item accepted before the close is still delivered.
        assert_eq!(queue.pop(), Some(7));
        assert_eq!(queue.pop(), None);
        assert!(queue.is_closed());
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let queue: Arc<JobQueue<u64>> = Arc::new(JobQueue::new(1));
        let consumer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.pop())
        };
        std::thread::sleep(Duration::from_millis(20));
        queue.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn closing_a_saturated_queue_unblocks_every_pusher() {
        // The shutdown-under-backpressure scenario: the queue is full, a
        // crowd of connection threads is blocked in push (waiting on the
        // not-full condvar), and close() fires. Every blocked pusher must
        // wake up with PushError — close notifying only the consumers'
        // condvar would leave them asleep forever — and everything accepted
        // before the close must still drain.
        const PUSHERS: u64 = 8;
        let queue = Arc::new(JobQueue::new(2));
        queue.push(0u64).unwrap();
        queue.push(1u64).unwrap(); // saturated
        let pushers: Vec<_> = (0..PUSHERS)
            .map(|i| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || queue.push(100 + i))
            })
            .collect();
        // Give the crowd time to actually block on the full queue.
        while queue.depth() < 2 {
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(30));
        queue.close();
        for pusher in pushers {
            // A hang here (the join never returning) IS the regression.
            assert_eq!(pusher.join().unwrap(), Err(PushError));
        }
        // The two accepted items survive the shutdown; nothing else does.
        assert_eq!(queue.pop(), Some(0));
        assert_eq!(queue.pop(), Some(1));
        assert_eq!(queue.pop(), None);
        assert_eq!(queue.enqueued(), 2);
    }

    #[test]
    fn try_push_never_blocks() {
        let queue = JobQueue::new(1);
        assert_eq!(queue.try_push(1u64), Ok(()));
        // Saturated: the reject returns the item, and nothing was enqueued.
        assert_eq!(queue.try_push(2), Err(TryPushError::Full(2)));
        assert_eq!(queue.enqueued(), 1);
        assert_eq!(queue.pop(), Some(1));
        assert_eq!(queue.try_push(3), Ok(()));
        queue.close();
        assert_eq!(queue.try_push(4), Err(TryPushError::Closed(4)));
        // The item accepted before the close still drains.
        assert_eq!(queue.pop(), Some(3));
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn mpmc_delivers_every_item_exactly_once() {
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = 250;
        let queue = Arc::new(JobQueue::new(8));
        let sum = Arc::new(AtomicU64::new(0));
        let received = Arc::new(AtomicU64::new(0));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let sum = Arc::clone(&sum);
                let received = Arc::clone(&received);
                std::thread::spawn(move || {
                    while let Some(v) = queue.pop() {
                        sum.fetch_add(v, Ordering::Relaxed);
                        received.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        queue.push(p * PER_PRODUCER + i).unwrap();
                    }
                })
            })
            .collect();
        for producer in producers {
            producer.join().unwrap();
        }
        queue.close();
        for consumer in consumers {
            consumer.join().unwrap();
        }
        let n = PRODUCERS * PER_PRODUCER;
        assert_eq!(received.load(Ordering::Relaxed), n);
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
        assert_eq!(queue.enqueued(), n);
    }

    #[test]
    fn drr_interleaves_lanes_one_job_per_pass() {
        let queue = JobQueue::new(16);
        // Lane "a" floods first; "b" and "c" each queue one job later.
        for i in 0..3 {
            queue.try_push_lane("a", ("a", i)).unwrap();
        }
        queue.try_push_lane("b", ("b", 0)).unwrap();
        queue.try_push_lane("c", ("c", 0)).unwrap();
        assert_eq!(queue.active_lanes(), 3);
        assert_eq!(queue.max_lane_depth(), 3);
        // Round-robin: the late-arriving polite lanes are served after one
        // "a" job each pass, not after the whole "a" backlog.
        let order: Vec<_> = (0..5).map(|_| queue.pop().unwrap()).collect();
        assert_eq!(
            order,
            vec![("a", 0), ("b", 0), ("c", 0), ("a", 1), ("a", 2)]
        );
        assert_eq!(queue.active_lanes(), 0);
    }

    #[test]
    fn fair_share_sheds_the_greedy_lane_only() {
        let queue = JobQueue::new(8);
        // Four active lanes => fair share is 8 / 4 = 2 per lane.
        for lane in ["greedy", "p1", "p2", "p3"] {
            queue.try_push_lane(lane, lane).unwrap();
        }
        assert_eq!(queue.fair_share(), 2);
        assert_eq!(queue.try_push_lane("greedy", "greedy"), Ok(()));
        // The greedy lane is now at its share: its next push sheds...
        assert_eq!(
            queue.try_push_lane("greedy", "greedy"),
            Err(TryPushError::Full("greedy"))
        );
        // ...while the polite lanes still have room.
        assert_eq!(queue.try_push_lane("p1", "p1"), Ok(()));
        assert_eq!(queue.lane_depth("greedy"), 2);
        assert_eq!(queue.lane_depth("p1"), 2);
    }

    #[test]
    fn a_single_lane_keeps_the_whole_capacity() {
        // Single-tenant regression: with only the default lane active, the
        // fair share equals the full capacity — fair queuing must not
        // shrink the pre-lane queue's admission.
        let queue = JobQueue::new(4);
        for i in 0..4 {
            assert_eq!(queue.try_push(i), Ok(()));
        }
        assert_eq!(queue.fair_share(), 4);
        assert_eq!(queue.try_push(9), Err(TryPushError::Full(9)));
    }

    #[test]
    fn draining_a_lane_raises_the_other_lanes_shares() {
        let queue = JobQueue::new(4);
        queue.try_push_lane("a", "a0").unwrap();
        queue.try_push_lane("b", "b0").unwrap();
        // Two lanes: share 2, so "a" can hold one more but not three.
        queue.try_push_lane("a", "a1").unwrap();
        assert_eq!(
            queue.try_push_lane("a", "a2"),
            Err(TryPushError::Full("a2"))
        );
        // Drain "b" entirely; "a" becomes the only lane and its share
        // grows back to the whole capacity.
        assert_eq!(queue.pop(), Some("a0"));
        assert_eq!(queue.pop(), Some("b0"));
        assert_eq!(queue.active_lanes(), 1);
        assert_eq!(queue.try_push_lane("a", "a2"), Ok(()));
        assert_eq!(queue.try_push_lane("a", "a3"), Ok(()));
        assert_eq!(queue.try_push_lane("a", "a4"), Ok(()));
        assert_eq!(queue.lane_depth("a"), 4);
    }

    #[test]
    fn close_drains_every_lane_then_returns_none() {
        // Satellite regression: a shutdown with multiple populated lanes
        // must deliver every accepted job across all lanes (still in DRR
        // order) before consumers see None, and blocked pushers on any
        // lane must wake with PushError.
        let queue = Arc::new(JobQueue::new(6));
        for lane in ["a", "b", "c"] {
            queue.try_push_lane(lane, format!("{lane}0")).unwrap();
            queue.try_push_lane(lane, format!("{lane}1")).unwrap();
        }
        // All three lanes are at their fair share (6 / 3 = 2): a pusher on
        // each lane blocks, and close must unblock every one of them.
        let blocked: Vec<_> = ["a", "b", "c"]
            .into_iter()
            .map(|lane| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || queue.push_lane(lane, format!("{lane}X")))
            })
            .collect();
        std::thread::sleep(Duration::from_millis(30));
        queue.close();
        for pusher in blocked {
            assert_eq!(pusher.join().unwrap(), Err(PushError));
        }
        let drained: Vec<_> = std::iter::from_fn(|| queue.pop()).collect();
        assert_eq!(drained, vec!["a0", "b0", "c0", "a1", "b1", "c1"]);
        assert_eq!(queue.pop(), None);
        assert_eq!(queue.enqueued(), 6);
    }
}
