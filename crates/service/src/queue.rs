//! A bounded blocking MPMC queue built on `Mutex` + `Condvar`.
//!
//! The daemon's connection threads are the producers (one push per
//! localize/batch request) and the fixed worker pool is the consumer side.
//! The queue is **bounded**: when `capacity` jobs are already waiting,
//! [`JobQueue::push`] blocks the connection thread, which in turn stops
//! reading from its socket — backpressure propagates to the client through
//! TCP instead of letting an aggressive load spike buffer unbounded work in
//! memory.
//!
//! Shutdown is cooperative: [`JobQueue::close`] wakes every blocked thread;
//! producers get [`PushError`], consumers drain the remaining items and
//! then receive `None`.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Error returned by [`JobQueue::push`] once the queue is closed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PushError;

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job queue is closed")
    }
}

impl std::error::Error for PushError {}

/// Error returned by [`JobQueue::try_push`], carrying the rejected item
/// back so the caller can answer its client instead of dropping it.
#[derive(Debug, PartialEq, Eq)]
pub enum TryPushError<T> {
    /// The queue was at capacity; admission control should shed the job.
    Full(T),
    /// The queue was closed; the daemon is shutting down.
    Closed(T),
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
    /// Total number of items ever accepted (for the stats endpoint).
    enqueued: u64,
}

/// A bounded blocking multi-producer multi-consumer queue.
#[derive(Debug)]
pub struct JobQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// Creates a queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> JobQueue<T> {
        JobQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
                enqueued: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The maximum number of waiting items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of items currently waiting.
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// Total number of items ever accepted.
    pub fn enqueued(&self) -> u64 {
        self.state.lock().expect("queue poisoned").enqueued
    }

    /// Enqueues an item, blocking while the queue is full (backpressure).
    ///
    /// # Errors
    ///
    /// Returns [`PushError`] (with the item lost) if the queue was closed
    /// before space became available.
    pub fn push(&self, item: T) -> Result<(), PushError> {
        let mut state = self.state.lock().expect("queue poisoned");
        while state.items.len() >= self.capacity && !state.closed {
            state = self.not_full.wait(state).expect("queue poisoned");
        }
        if state.closed {
            return Err(PushError);
        }
        state.items.push_back(item);
        state.enqueued += 1;
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues an item **without blocking**: a full queue is an immediate
    /// [`TryPushError::Full`] instead of backpressure. Deadline-carrying
    /// jobs go through this path — blocking a connection thread on a
    /// saturated queue could hold the job past its own deadline, so the
    /// daemon sheds it (an `overloaded` error) and lets the client retry.
    ///
    /// # Errors
    ///
    /// Returns the item back inside [`TryPushError`].
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Err(TryPushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(TryPushError::Full(item));
        }
        state.items.push_back(item);
        state.enqueued += 1;
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues an item, blocking while the queue is empty. Returns `None`
    /// only once the queue is closed **and** fully drained, so no accepted
    /// job is ever dropped during a graceful shutdown.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue poisoned");
        }
    }

    /// Closes the queue: producers start failing, consumers drain and exit.
    /// Idempotent.
    ///
    /// Shutdown-under-backpressure invariant (regression-pinned by
    /// `closing_a_saturated_queue_unblocks_every_pusher`): the wake-up must
    /// cover **both** condvars. Producers blocked on a *full* queue wait on
    /// `not_full`; if close only notified `not_empty`, those connection
    /// threads would sleep forever — no consumer ever pops once the workers
    /// start exiting, so nothing else would wake them and shutdown would
    /// deadlock. The `closed` flag is written under the state lock *before*
    /// either notification, so a producer that re-checks its predicate
    /// after waking (or that is just arriving) always observes it.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// `true` once [`JobQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue poisoned").closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_within_capacity() {
        let queue = JobQueue::new(4);
        for i in 0..4 {
            queue.push(i).unwrap();
        }
        assert_eq!(queue.depth(), 4);
        assert_eq!(queue.enqueued(), 4);
        for i in 0..4 {
            assert_eq!(queue.pop(), Some(i));
        }
    }

    #[test]
    fn push_blocks_until_a_slot_frees() {
        let queue = Arc::new(JobQueue::new(1));
        queue.push(0u64).unwrap();
        let producer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.push(1).unwrap())
        };
        // The producer is blocked on the full queue; popping unblocks it.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(queue.depth(), 1, "second push must be waiting");
        assert_eq!(queue.pop(), Some(0));
        producer.join().unwrap();
        assert_eq!(queue.pop(), Some(1));
    }

    #[test]
    fn close_wakes_producers_and_drains_consumers() {
        let queue = Arc::new(JobQueue::new(1));
        queue.push(7u64).unwrap();
        let blocked_producer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.push(8))
        };
        std::thread::sleep(Duration::from_millis(20));
        queue.close();
        assert_eq!(blocked_producer.join().unwrap(), Err(PushError));
        assert_eq!(queue.push(9), Err(PushError));
        // The item accepted before the close is still delivered.
        assert_eq!(queue.pop(), Some(7));
        assert_eq!(queue.pop(), None);
        assert!(queue.is_closed());
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let queue: Arc<JobQueue<u64>> = Arc::new(JobQueue::new(1));
        let consumer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.pop())
        };
        std::thread::sleep(Duration::from_millis(20));
        queue.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn closing_a_saturated_queue_unblocks_every_pusher() {
        // The shutdown-under-backpressure scenario: the queue is full, a
        // crowd of connection threads is blocked in push (waiting on the
        // not-full condvar), and close() fires. Every blocked pusher must
        // wake up with PushError — close notifying only the consumers'
        // condvar would leave them asleep forever — and everything accepted
        // before the close must still drain.
        const PUSHERS: u64 = 8;
        let queue = Arc::new(JobQueue::new(2));
        queue.push(0u64).unwrap();
        queue.push(1u64).unwrap(); // saturated
        let pushers: Vec<_> = (0..PUSHERS)
            .map(|i| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || queue.push(100 + i))
            })
            .collect();
        // Give the crowd time to actually block on the full queue.
        while queue.depth() < 2 {
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(30));
        queue.close();
        for pusher in pushers {
            // A hang here (the join never returning) IS the regression.
            assert_eq!(pusher.join().unwrap(), Err(PushError));
        }
        // The two accepted items survive the shutdown; nothing else does.
        assert_eq!(queue.pop(), Some(0));
        assert_eq!(queue.pop(), Some(1));
        assert_eq!(queue.pop(), None);
        assert_eq!(queue.enqueued(), 2);
    }

    #[test]
    fn try_push_never_blocks() {
        let queue = JobQueue::new(1);
        assert_eq!(queue.try_push(1u64), Ok(()));
        // Saturated: the reject returns the item, and nothing was enqueued.
        assert_eq!(queue.try_push(2), Err(TryPushError::Full(2)));
        assert_eq!(queue.enqueued(), 1);
        assert_eq!(queue.pop(), Some(1));
        assert_eq!(queue.try_push(3), Ok(()));
        queue.close();
        assert_eq!(queue.try_push(4), Err(TryPushError::Closed(4)));
        // The item accepted before the close still drains.
        assert_eq!(queue.pop(), Some(3));
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn mpmc_delivers_every_item_exactly_once() {
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = 250;
        let queue = Arc::new(JobQueue::new(8));
        let sum = Arc::new(AtomicU64::new(0));
        let received = Arc::new(AtomicU64::new(0));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let sum = Arc::clone(&sum);
                let received = Arc::clone(&received);
                std::thread::spawn(move || {
                    while let Some(v) = queue.pop() {
                        sum.fetch_add(v, Ordering::Relaxed);
                        received.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        queue.push(p * PER_PRODUCER + i).unwrap();
                    }
                })
            })
            .collect();
        for producer in producers {
            producer.join().unwrap();
        }
        queue.close();
        for consumer in consumers {
            consumer.join().unwrap();
        }
        let n = PRODUCERS * PER_PRODUCER;
        assert_eq!(received.load(Ordering::Relaxed), n);
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
        assert_eq!(queue.enqueued(), n);
    }
}
