//! The sharded LRU cache of prepared localizers — the heart of the service.
//!
//! Building a [`Localizer`] is the expensive part of serving a request:
//! parse → typecheck → unroll/inline → bit-blast, then one pass over the
//! grouped CNF to build the selector-relaxed template formula. All of it is
//! input-independent, so a long-lived daemon should pay it **once per
//! distinct (program, options) pair**, not once per request. This cache
//! stores fully *warmed* localizers behind `Arc`, keyed by the stable
//! content hash of [`crate::protocol::Job::cache_key`]: concurrent requests
//! for the same program share one prepared instance and skip straight to
//! MAX-SAT solving.
//!
//! Two properties matter under real load:
//!
//! * **Sharding** — the cache is split into independently locked shards
//!   (key → shard by the avalanche-mixed hash) so the worker pool doesn't
//!   serialize on one mutex. Each shard holds at most
//!   `floor(capacity / shards)` entries and evicts its least-recently-used
//!   entry when full; recency is a global atomic tick, so LRU order is
//!   consistent across threads at the cost of one `fetch_add`. Eviction
//!   only drops the shard's reference — requests still holding the evicted
//!   `Arc` finish undisturbed.
//! * **Single-flight builds** — a cache slot is inserted *before* the
//!   expensive build runs, holding a [`OnceLock`] that the first caller
//!   fills while later callers for the same key block on it. A burst of
//!   first requests for one program (the thundering herd that killed the
//!   LocFaults-style per-test rebuild approach) does exactly one parse +
//!   bit-blast, and the shard lock is **not** held while building, so other
//!   keys in the shard stay unaffected.
//!
//! Failed builds (parse/type/encode errors) are *not* negatively cached:
//! the pending slot is removed so the error doesn't occupy capacity, and
//! every waiter receives a clone of the error.
//!
//! Since the `revise` op landed, the cache stores **segment-level entries**
//! ([`PreparedEntry`]) rather than bare localizers: each entry keeps the
//! parsed AST and its per-function structural segments
//! ([`minic::ProgramSegments`]) next to the warmed [`Localizer`], plus the
//! last report's per-rank costs. That is what makes an edited program's
//! request cheap — the server diffs the new AST against the cached segments
//! ([`minic::classify_edit`]) and reuses every segment the edit provably
//! left alone, instead of treating the entry as an all-or-nothing blob.

use crate::protocol::{Job, JobOptions, JobSpec};
use bugassist::{LocalizationReport, Localizer};
use minic::{segment_program, Program, ProgramSegments};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One cached preparation: the program's AST and diffable segments, the
/// job parameters it was prepared under, the warmed localizer, and the
/// most recent report's costs (warm-start seeds for a future revision).
#[derive(Debug)]
pub struct PreparedEntry {
    /// The MinC source text the entry's job carried — kept verbatim so the
    /// persistent store can serialize the entry without a pretty-printer
    /// (the AST has none) and re-parse it on restore.
    pub source: String,
    /// The parsed program this entry was built from.
    pub program: Program,
    /// Per-function fingerprints + line traces of [`PreparedEntry::program`],
    /// precomputed so a `revise` diff costs no re-segmentation of the old
    /// side.
    pub segments: ProgramSegments,
    /// Entry function the localizer was prepared for.
    pub entry: String,
    /// Specification the localizer was prepared for.
    pub spec: JobSpec,
    /// Encoding/solver options the localizer was prepared with.
    pub options: JobOptions,
    /// The warmed localizer itself.
    pub localizer: Arc<Localizer>,
    /// Per-rank CoMSS costs of the most recent single-input report served
    /// from this entry; seeds the portfolio's bound when the program is
    /// revised.
    last_costs: Mutex<Option<Vec<u64>>>,
    /// Reports served from this entry, keyed by failing input. The solver
    /// is deterministic, so a repeat of (entry, input) reproduces the same
    /// report — which lets the `revise` op serve relabel-class edits (and
    /// reverts to an already-seen version) by *remapping* a cached report
    /// instead of re-solving. Bounded FIFO.
    reports: Mutex<Vec<(Vec<i64>, LocalizationReport)>>,
}

/// Reports remembered per entry; edit loops revisit few distinct inputs,
/// so a small bound suffices and caps memory.
const REPORT_CACHE_CAP: usize = 32;

impl PreparedEntry {
    /// Packages a freshly built (and warmed) localizer with the job
    /// parameters and the program's segmentation.
    pub fn new(program: Program, job: &Job, localizer: Arc<Localizer>) -> PreparedEntry {
        let segments = segment_program(&program);
        PreparedEntry::with_segments(program, segments, job, localizer)
    }

    /// [`PreparedEntry::new`] with the program's segmentation already in
    /// hand — the revise path computes it for the edit diff and must not
    /// pay the hashing pass a second time.
    pub fn with_segments(
        program: Program,
        segments: ProgramSegments,
        job: &Job,
        localizer: Arc<Localizer>,
    ) -> PreparedEntry {
        PreparedEntry {
            source: job.program.clone(),
            segments,
            program,
            entry: job.entry.clone(),
            spec: job.spec,
            options: job.options.clone(),
            localizer,
            last_costs: Mutex::new(None),
            reports: Mutex::new(Vec::new()),
        }
    }

    /// Records a single-input report served from this entry: remembers it
    /// for solve-skipping reuse and refreshes the warm-start cost seeds.
    pub fn record_report(&self, input: &[i64], report: &LocalizationReport) {
        let costs: Vec<u64> = report.suspects.iter().map(|s| s.cost).collect();
        *self.last_costs.lock().expect("last_costs poisoned") = Some(costs);
        let mut reports = self.reports.lock().expect("reports poisoned");
        if let Some(slot) = reports.iter_mut().find(|(i, _)| i == input) {
            slot.1 = report.clone();
            return;
        }
        if reports.len() >= REPORT_CACHE_CAP {
            reports.remove(0);
        }
        reports.push((input.to_vec(), report.clone()));
    }

    /// The report previously served from this entry for exactly this
    /// failing input, if remembered.
    pub fn cached_report(&self, input: &[i64]) -> Option<LocalizationReport> {
        self.reports
            .lock()
            .expect("reports poisoned")
            .iter()
            .find(|(i, _)| i == input)
            .map(|(_, report)| report.clone())
    }

    /// The warm-start seeds for a revision of this entry's program, if a
    /// report has been served from it.
    pub fn seed_costs(&self) -> Option<Vec<u64>> {
        self.last_costs.lock().expect("last_costs poisoned").clone()
    }
}

/// Monotonic counters describing cache behaviour since startup.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests that found a slot (completed, or pending — in which case
    /// they waited for the builder instead of duplicating its work).
    pub hits: u64,
    /// Requests that had to build.
    pub misses: u64,
    /// Entries dropped to make room.
    pub evictions: u64,
    /// Builds that panicked (the poisoned slot is evicted and the panic is
    /// converted into an error response; the worker survives).
    pub poisoned: u64,
    /// Entries currently resident.
    pub entries: usize,
}

/// A slot holding a build that is either in flight or finished.
type Slot = Arc<OnceLock<Result<Arc<PreparedEntry>, String>>>;

#[derive(Debug)]
struct Entry {
    key: u64,
    last_used: u64,
    slot: Slot,
}

/// A sharded least-recently-used cache of [`PreparedEntry`]s (warmed
/// localizers plus their diffable program segments) with single-flight
/// builds.
#[derive(Debug)]
pub struct PreparedCache {
    shards: Vec<Mutex<Vec<Entry>>>,
    per_shard_capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    poisoned: AtomicU64,
}

impl PreparedCache {
    /// Creates a cache of at most `capacity` entries spread over `shards`
    /// independently locked shards (both clamped to at least 1; shard count
    /// never exceeds capacity). `capacity` is an upper bound on resident
    /// prepared localizers — a memory promise — so the per-shard share
    /// rounds *down*; a capacity not divisible by the shard count wastes
    /// the remainder rather than overshooting (check [`PreparedCache::capacity`]
    /// for the effective total).
    pub fn new(capacity: usize, shards: usize) -> PreparedCache {
        let shards = shards.clamp(1, capacity.max(1));
        let per_shard_capacity = (capacity.max(1) / shards).max(1);
        PreparedCache {
            shards: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
            per_shard_capacity,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            poisoned: AtomicU64::new(0),
        }
    }

    /// Number of shards (for the stats endpoint).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total entry capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.per_shard_capacity * self.shards.len()
    }

    fn shard(&self, key: u64) -> &Mutex<Vec<Entry>> {
        // The key went through an avalanche finalizer, so the low bits are
        // uniformly distributed over the shards.
        &self.shards[(key % self.shards.len() as u64) as usize]
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Peeks at a *completed* entry without building anything: the `revise`
    /// op uses this to fetch the pre-edit preparation its delta is computed
    /// against. Touches the entry's recency (a revision is a use of the old
    /// program's entry) but does not count as a hit or miss — the
    /// stats-visible event is the one on the revision's own key. A slot
    /// whose build is still in flight reads as absent (revise then falls
    /// back to a cold build rather than blocking on an unrelated builder).
    pub fn lookup(&self, key: u64) -> Option<Arc<PreparedEntry>> {
        let tick = self.next_tick();
        let mut entries = self.shard(key).lock().expect("cache shard poisoned");
        let entry = entries.iter_mut().find(|e| e.key == key)?;
        entry.last_used = tick;
        entry
            .slot
            .get()
            .and_then(|result| result.as_ref().ok())
            .map(Arc::clone)
    }

    /// Returns the prepared entry for `key`, running `build` if (and
    /// only if) no other request has built or is building it. The boolean
    /// is `true` for a cache hit — including the "waited for a concurrent
    /// builder" case, where this call did no build work of its own.
    ///
    /// # Errors
    ///
    /// A failing build propagates its error to every waiter and leaves no
    /// cache entry behind.
    pub fn get_or_build(
        &self,
        key: u64,
        build: impl FnOnce() -> Result<PreparedEntry, String>,
    ) -> (Result<Arc<PreparedEntry>, String>, bool) {
        // Phase 1 (shard locked, O(shard size)): find or insert the slot.
        let (slot, hit) = {
            let tick = self.next_tick();
            let mut entries = self.shard(key).lock().expect("cache shard poisoned");
            if let Some(entry) = entries.iter_mut().find(|e| e.key == key) {
                entry.last_used = tick;
                (Arc::clone(&entry.slot), true)
            } else {
                if entries.len() >= self.per_shard_capacity {
                    let lru = entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.last_used)
                        .map(|(i, _)| i)
                        .expect("full shard is non-empty");
                    entries.swap_remove(lru);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                let slot: Slot = Arc::new(OnceLock::new());
                entries.push(Entry {
                    key,
                    last_used: tick,
                    slot: Arc::clone(&slot),
                });
                (slot, false)
            }
        };
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }

        // Phase 2 (shard unlocked): build, or block on the builder. Only
        // the thread that inserted the slot can be first into get_or_init
        // with actual work — but any waiter may run the closure if it wins
        // the OnceLock race, so pass the same builder through for safety:
        // whoever runs it, it runs at most once per slot.
        //
        // A *panicking* build poisons the std `Once` under the slot, which
        // makes every waiter's `get_or_init` unwind as well. Catch that
        // here: convert it into an ordinary build error (so workers answer
        // their clients and live on) and fall through to the eviction below
        // — a poisoned slot must never squat in the cache, or the key would
        // panic every caller forever.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            slot.get_or_init(|| build().map(Arc::new)).clone()
        }))
        .unwrap_or_else(|_| {
            self.poisoned.fetch_add(1, Ordering::Relaxed);
            Err("internal error: prepared-formula build panicked".to_string())
        });

        // A failed build must not squat in the cache: drop the slot (only
        // if it is still ours — a later rebuild may have replaced it).
        if result.is_err() {
            let mut entries = self.shard(key).lock().expect("cache shard poisoned");
            entries.retain(|e| e.key != key || !Arc::ptr_eq(&e.slot, &slot));
        }
        (result, hit)
    }

    /// Inserts an already-built entry under `key` — the restore-on-boot
    /// path, which decodes warm entries from the persistent store before any
    /// request arrives. Counts neither a hit nor a miss (no request asked),
    /// but does evict LRU entries when the shard is full, exactly like a
    /// built insert. A key that is already resident is left untouched: a
    /// live entry (possibly serving requests) always beats a restored one.
    pub fn insert(&self, key: u64, entry: Arc<PreparedEntry>) {
        let tick = self.next_tick();
        let mut entries = self.shard(key).lock().expect("cache shard poisoned");
        if entries.iter().any(|e| e.key == key) {
            return;
        }
        if entries.len() >= self.per_shard_capacity {
            let lru = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("full shard is non-empty");
            entries.swap_remove(lru);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        let slot: Slot = Arc::new(OnceLock::new());
        let _ = slot.set(Ok(entry));
        entries.push(Entry {
            key,
            last_used: tick,
            slot,
        });
    }

    /// Snapshots every *completed, successful* entry — the
    /// snapshot-on-shutdown path. Pending builds and failed slots are
    /// skipped (an in-flight build at shutdown has no one left to wait for
    /// it; errors are never persisted). Sorted by key so snapshot order is
    /// deterministic.
    pub fn entries(&self) -> Vec<(u64, Arc<PreparedEntry>)> {
        let mut all = Vec::new();
        for shard in &self.shards {
            let entries = shard.lock().expect("cache shard poisoned");
            for entry in entries.iter() {
                if let Some(Ok(prepared)) = entry.slot.get() {
                    all.push((entry.key, Arc::clone(prepared)));
                }
            }
        }
        all.sort_by_key(|&(key, _)| key);
        all
    }

    /// Hit/miss/eviction/occupancy counters since startup.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            poisoned: self.poisoned.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().expect("cache shard poisoned").len())
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmc::Spec;
    use bugassist::LocalizerConfig;
    use std::sync::atomic::AtomicUsize;

    fn build_localizer(expr: &str) -> Result<PreparedEntry, String> {
        let source = format!("int main(int x) {{\nint y = {expr};\nreturn y;\n}}");
        let program = minic::parse_program(&source).map_err(|e| e.to_string())?;
        let config = LocalizerConfig {
            encode: bmc::EncodeConfig {
                width: 8,
                ..bmc::EncodeConfig::default()
            },
            ..LocalizerConfig::default()
        };
        let localizer = Localizer::new(&program, "main", &Spec::ReturnEquals(4), &config)
            .map_err(|e| e.to_string())?;
        let job = Job::new(source, "main", JobSpec::ReturnEquals(4), vec![vec![3]]);
        Ok(PreparedEntry::new(program, &job, Arc::new(localizer)))
    }

    #[test]
    fn second_request_hits_and_shares_the_instance() {
        let cache = PreparedCache::new(4, 2);
        let builds = AtomicUsize::new(0);
        let build = || {
            builds.fetch_add(1, Ordering::Relaxed);
            build_localizer("x + 1")
        };
        let (first, hit1) = cache.get_or_build(1, build);
        let (second, hit2) = cache.get_or_build(1, || build_localizer("x + 1"));
        assert!(!hit1);
        assert!(hit2);
        assert!(Arc::ptr_eq(&first.unwrap(), &second.unwrap()));
        assert_eq!(builds.load(Ordering::Relaxed), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn capacity_one_evicts_lru() {
        let cache = PreparedCache::new(1, 1);
        assert_eq!(cache.capacity(), 1);
        cache
            .get_or_build(1, || build_localizer("x + 1"))
            .0
            .unwrap();
        cache
            .get_or_build(2, || build_localizer("x + 2"))
            .0
            .unwrap();
        // 1 was evicted by 2, so requesting it again is a miss + rebuild.
        let (_, hit) = cache.get_or_build(1, || build_localizer("x + 1"));
        assert!(!hit);
        assert_eq!(cache.stats().evictions, 2);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn recency_protects_the_hot_entry() {
        // Shard count 1 so all three keys compete for the same two slots.
        let cache = PreparedCache::new(2, 1);
        cache
            .get_or_build(1, || build_localizer("x + 1"))
            .0
            .unwrap();
        cache
            .get_or_build(2, || build_localizer("x + 2"))
            .0
            .unwrap();
        // Touch 1 so 2 becomes LRU, then insert 3.
        assert!(cache.get_or_build(1, || unreachable!("cached")).1);
        cache
            .get_or_build(3, || build_localizer("x + 3"))
            .0
            .unwrap();
        assert!(cache.get_or_build(1, || unreachable!("cached")).1);
        let (_, hit2) = cache.get_or_build(2, || build_localizer("x + 2"));
        assert!(!hit2, "LRU entry was evicted");
    }

    #[test]
    fn concurrent_first_requests_build_exactly_once() {
        let cache = Arc::new(PreparedCache::new(4, 2));
        let builds = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let builds = Arc::clone(&builds);
                std::thread::spawn(move || {
                    let (result, _) = cache.get_or_build(7, || {
                        builds.fetch_add(1, Ordering::Relaxed);
                        // Widen the race window: the herd must block on the
                        // slot, not start rival builds.
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        build_localizer("x + 1")
                    });
                    result.unwrap()
                })
            })
            .collect();
        let instances: Vec<Arc<PreparedEntry>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(builds.load(Ordering::Relaxed), 1, "single-flight");
        for other in &instances[1..] {
            assert!(Arc::ptr_eq(&instances[0], other));
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 3);
    }

    #[test]
    fn eviction_while_in_use_keeps_the_instance_alive_and_rebuilds_later() {
        let cache = PreparedCache::new(1, 1);
        let (first, _) = cache.get_or_build(1, || build_localizer("x + 1"));
        let first = first.unwrap();
        // Key 2 evicts key 1 (capacity 1) while we still hold the Arc.
        cache
            .get_or_build(2, || build_localizer("x + 2"))
            .0
            .unwrap();
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().entries, 1);
        // The evicted entry keeps working for its holder: localize through
        // it after the cache dropped its reference.
        let report = first.localizer.localize(&[7]).expect("still usable");
        assert!(!report.suspect_lines.is_empty());
        assert_eq!(first.localizer.warm(), 0, "still warm");
        // Re-requesting the evicted key is a miss that builds a *fresh*
        // instance; the old Arc is not resurrected.
        let (rebuilt, hit) = cache.get_or_build(1, || build_localizer("x + 1"));
        assert!(!hit);
        assert!(!Arc::ptr_eq(&first, &rebuilt.unwrap()));
    }

    #[test]
    fn failing_build_propagates_to_every_waiter_without_poisoning_the_slot() {
        // A thundering herd on a key whose build fails: single-flight must
        // still hold (one build attempt), every waiter must receive the
        // error, and the slot must be neither poisoned nor negatively
        // cached — the next request for the key builds again and succeeds.
        let cache = Arc::new(PreparedCache::new(4, 1));
        let attempts = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let attempts = Arc::clone(&attempts);
                std::thread::spawn(move || {
                    let (result, _) = cache.get_or_build(9, || {
                        attempts.fetch_add(1, Ordering::Relaxed);
                        // Widen the window so the herd really waits on the
                        // pending slot rather than racing past it.
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        Err("kaboom".to_string())
                    });
                    result
                })
            })
            .collect();
        for handle in handles {
            let result = handle.join().expect("waiter panicked");
            assert_eq!(result.unwrap_err(), "kaboom", "every waiter sees the error");
        }
        assert_eq!(
            attempts.load(Ordering::Relaxed),
            1,
            "failures are single-flight too"
        );
        assert_eq!(cache.stats().entries, 0, "no negative caching");
        // The key is immediately buildable again — and this time it works.
        let (result, hit) = cache.get_or_build(9, || build_localizer("x + 1"));
        assert!(!hit);
        assert!(result.is_ok());
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn lookup_peeks_without_building_and_touches_recency() {
        let cache = PreparedCache::new(2, 1);
        assert!(cache.lookup(1).is_none(), "empty cache has nothing to peek");
        cache
            .get_or_build(1, || build_localizer("x + 1"))
            .0
            .unwrap();
        cache
            .get_or_build(2, || build_localizer("x + 2"))
            .0
            .unwrap();
        let peeked = cache.lookup(1).expect("present");
        assert_eq!(peeked.entry, "main");
        // The peek was a use: key 2 is now the LRU victim when 3 arrives.
        cache
            .get_or_build(3, || build_localizer("x + 3"))
            .0
            .unwrap();
        assert!(cache.lookup(1).is_some(), "recently peeked entry survives");
        assert!(cache.lookup(2).is_none(), "LRU entry was evicted");
        // Peeks never count as hits or misses.
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 3));
    }

    #[test]
    fn panicking_build_poisons_nothing_and_the_key_recovers() {
        // A build that panics must not take the worker (caller) down, must
        // not leave a poisoned slot behind (which would panic every future
        // caller of the key), and must leave the key rebuildable. A herd is
        // the hard case: the waiters block on the slot whose builder
        // panics, so std's Once poisoning unwinds them too — all of them
        // must come back with errors, not aborts.
        let cache = Arc::new(PreparedCache::new(4, 1));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    let (result, _) = cache.get_or_build(11, || {
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        panic!("injected build fault");
                    });
                    result
                })
            })
            .collect();
        for handle in handles {
            let result = handle.join().expect("caller must survive the panic");
            assert!(result.unwrap_err().contains("panicked"));
        }
        assert_eq!(cache.stats().entries, 0, "poisoned slot was evicted");
        assert!(cache.stats().poisoned >= 1);
        // The key is immediately buildable again — and this time it works.
        let (result, hit) = cache.get_or_build(11, || build_localizer("x + 1"));
        assert!(!hit);
        assert!(result.is_ok());
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn failed_builds_are_not_cached() {
        let cache = PreparedCache::new(4, 1);
        let (result, hit) = cache.get_or_build(1, || Err("boom".to_string()));
        assert!(!hit);
        assert_eq!(result.unwrap_err(), "boom");
        assert_eq!(cache.stats().entries, 0, "error slot was removed");
        // The key is buildable again afterwards.
        let (result, hit) = cache.get_or_build(1, || build_localizer("x + 1"));
        assert!(!hit);
        assert!(result.is_ok());
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn insert_preloads_and_the_first_request_hits() {
        let cache = PreparedCache::new(4, 2);
        let entry = Arc::new(build_localizer("x + 1").unwrap());
        cache.insert(5, Arc::clone(&entry));
        // Preloading is invisible in hit/miss counters…
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 1));
        // …but the first request finds it warm and never builds.
        let (result, hit) = cache.get_or_build(5, || unreachable!("preloaded"));
        assert!(hit);
        assert!(Arc::ptr_eq(&entry, &result.unwrap()));
    }

    #[test]
    fn insert_never_replaces_a_live_entry() {
        let cache = PreparedCache::new(4, 1);
        let (live, _) = cache.get_or_build(5, || build_localizer("x + 1"));
        let live = live.unwrap();
        cache.insert(5, Arc::new(build_localizer("x + 2").unwrap()));
        let (after, hit) = cache.get_or_build(5, || unreachable!("cached"));
        assert!(hit);
        assert!(Arc::ptr_eq(&live, &after.unwrap()), "live entry wins");
    }

    #[test]
    fn entries_snapshots_only_successful_completions() {
        let cache = PreparedCache::new(4, 2);
        cache
            .get_or_build(2, || build_localizer("x + 2"))
            .0
            .unwrap();
        cache
            .get_or_build(1, || build_localizer("x + 1"))
            .0
            .unwrap();
        let _ = cache.get_or_build(3, || Err("boom".to_string()));
        let snapshot = cache.entries();
        let keys: Vec<u64> = snapshot.iter().map(|&(k, _)| k).collect();
        assert_eq!(keys, vec![1, 2], "sorted, failures excluded");
    }

    #[test]
    fn shards_do_not_exceed_capacity() {
        let cache = PreparedCache::new(4, 8);
        // More shards than capacity: clamped so capacity still holds.
        assert!(cache.shard_count() <= 4);
        assert_eq!(cache.capacity(), cache.shard_count());
    }
}
