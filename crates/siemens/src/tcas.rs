//! The TCAS aircraft collision-avoidance benchmark (Sec. 6.1 / Table 1 of the
//! paper), ported from the Siemens suite's `tcas.c` resolution logic to MinC.
//!
//! The port keeps the original decision structure — `Inhibit_Biased_Climb`,
//! the non-crossing climb/descend advisories, the threat predicates and the
//! `alt_sep_test` driver — so the fault catalogue can inject the same kinds
//! of mutations the Siemens versions contain (operator confusion, wrong
//! constants, negated branches, wrong initialization, wrong array index,
//! extra code). The original 1608-vector test pool is not redistributable;
//! [`tcas_test_vectors`] generates a deterministic seeded pool over the same
//! input domains instead, and golden outputs come from running the unmutated
//! program (exactly how the paper derives its surrogate specification).

use crate::faults::{line_containing, ErrorType, FaultSpec, FaultyVersion};
use bmc::{run_program, InterpConfig};
use minic::ast::Line;
use minic::{parse_expr, parse_program, Mutation, Program};
use prng::SplitMix64;

/// Advisory values returned by `alt_sep_test`.
pub mod advisory {
    /// No resolution advisory.
    pub const UNRESOLVED: i64 = 0;
    /// Climb advisory.
    pub const UPWARD_RA: i64 = 1;
    /// Descend advisory.
    pub const DOWNWARD_RA: i64 = 2;
}

/// The MinC source of the (correct) TCAS resolution logic.
pub const TCAS_SOURCE: &str = "\
int Cur_Vertical_Sep;
int High_Confidence;
int Two_of_Three_Reports_Valid;
int Own_Tracked_Alt;
int Own_Tracked_Alt_Rate;
int Other_Tracked_Alt;
int Alt_Layer_Value;
int Positive_RA_Alt_Thresh[4];
int Up_Separation;
int Down_Separation;
int Other_RAC;
int Other_Capability;
int Climb_Inhibit;
void initialize() {
    Positive_RA_Alt_Thresh[0] = 400;
    Positive_RA_Alt_Thresh[1] = 500;
    Positive_RA_Alt_Thresh[2] = 640;
    Positive_RA_Alt_Thresh[3] = 740;
    return;
}
int ALIM() {
    return Positive_RA_Alt_Thresh[Alt_Layer_Value];
}
int Inhibit_Biased_Climb() {
    return Climb_Inhibit != 0 ? Up_Separation + 100 : Up_Separation;
}
int Own_Below_Threat() {
    return Own_Tracked_Alt < Other_Tracked_Alt;
}
int Own_Above_Threat() {
    return Other_Tracked_Alt < Own_Tracked_Alt;
}
int Non_Crossing_Biased_Climb() {
    int upward_preferred = Inhibit_Biased_Climb() > Down_Separation;
    int result = 0;
    if (upward_preferred != 0) {
        result = !Own_Below_Threat() || !(Down_Separation >= ALIM());
    } else {
        result = Own_Above_Threat() && (Cur_Vertical_Sep >= 300) && (Up_Separation >= ALIM());
    }
    return result;
}
int Non_Crossing_Biased_Descend() {
    int upward_preferred = Inhibit_Biased_Climb() > Down_Separation;
    int result = 0;
    if (upward_preferred != 0) {
        result = Own_Below_Threat() && (Cur_Vertical_Sep >= 300) && (Down_Separation >= ALIM());
    } else {
        result = !Own_Above_Threat() || (Own_Above_Threat() && (Up_Separation >= ALIM()));
    }
    return result;
}
int alt_sep_test() {
    int enabled = High_Confidence != 0 && (Own_Tracked_Alt_Rate <= 600) && (Cur_Vertical_Sep > 600);
    int tcas_equipped = Other_Capability == 1;
    int intent_not_known = Two_of_Three_Reports_Valid != 0 && (Other_RAC == 0);
    int alt_sep = 0;
    int need_upward_RA = 0;
    int need_downward_RA = 0;
    if (enabled != 0 && ((tcas_equipped != 0 && intent_not_known != 0) || tcas_equipped == 0)) {
        need_upward_RA = Non_Crossing_Biased_Climb() && Own_Below_Threat();
        need_downward_RA = Non_Crossing_Biased_Descend() && Own_Above_Threat();
        if (need_upward_RA != 0 && need_downward_RA != 0) {
            alt_sep = 0;
        } else {
            if (need_upward_RA != 0) {
                alt_sep = 1;
            } else {
                if (need_downward_RA != 0) {
                    alt_sep = 2;
                } else {
                    alt_sep = 0;
                }
            }
        }
    }
    return alt_sep;
}
int main(int cvs, int hc, int ttrv, int ota, int otar, int otra, int alv, int us, int ds, int orac, int ocap, int ci) {
    Cur_Vertical_Sep = cvs;
    High_Confidence = hc;
    Two_of_Three_Reports_Valid = ttrv;
    Own_Tracked_Alt = ota;
    Own_Tracked_Alt_Rate = otar;
    Other_Tracked_Alt = otra;
    Alt_Layer_Value = alv;
    Up_Separation = us;
    Down_Separation = ds;
    Other_RAC = orac;
    Other_Capability = ocap;
    Climb_Inhibit = ci;
    initialize();
    return alt_sep_test();
}
";

/// Name of the entry function.
pub const TCAS_ENTRY: &str = "main";

/// Number of input parameters.
pub const TCAS_ARITY: usize = 12;

/// Parses the correct TCAS program.
pub fn tcas_program() -> Program {
    parse_program(TCAS_SOURCE).expect("the TCAS benchmark source parses")
}

/// The lines of `main` that copy the test inputs into the globals. They play
/// the role of the paper's hard input constraints and must never be blamed.
pub fn tcas_trusted_lines() -> Vec<Line> {
    [
        "Cur_Vertical_Sep = cvs;",
        "High_Confidence = hc;",
        "Two_of_Three_Reports_Valid = ttrv;",
        "Own_Tracked_Alt = ota;",
        "Own_Tracked_Alt_Rate = otar;",
        "Other_Tracked_Alt = otra;",
        "Alt_Layer_Value = alv;",
        "Up_Separation = us;",
        "Down_Separation = ds;",
        "Other_RAC = orac;",
        "Other_Capability = ocap;",
        "Climb_Inhibit = ci;",
        "initialize();",
        "return alt_sep_test();",
    ]
    .iter()
    .map(|p| line_containing(TCAS_SOURCE, p))
    .collect()
}

fn line(pattern: &str) -> Line {
    line_containing(TCAS_SOURCE, pattern)
}

/// The injected-fault versions of the TCAS benchmark (analogous to the
/// Siemens v1…v41 pool; one representative per fault flavour plus several
/// operator/constant variants, 20 versions in total).
// One sequential push per version keeps each catalogue entry next to the
// comment explaining its fault; a single `vec![]` literal would not lint.
#[allow(clippy::vec_init_then_push)]
pub fn tcas_versions() -> Vec<FaultyVersion> {
    use minic::BinOp;
    let mut versions = Vec::new();

    // ---- const faults ------------------------------------------------------
    // v1: the paper's Figure 2 fault — the climb-inhibit bias 100 becomes 300.
    versions.push(FaultyVersion {
        name: "v1",
        spec: FaultSpec::Mutations(vec![Mutation::SetConstant {
            line: line("Up_Separation + 100"),
            occurrence: 0,
            value: 300,
        }]),
        faulty_lines: vec![line("Up_Separation + 100")],
        error_count: 1,
        error_type: ErrorType::Const,
    });
    // v2: wrong resolution-advisory altitude threshold for layer 0.
    // (The MINSEP comparisons are untouchable here: the enablement check
    // already forces Cur_Vertical_Sep > 600, so mutating the 300 constant
    // would be an equivalent mutant.)
    versions.push(FaultyVersion {
        name: "v2",
        spec: FaultSpec::Mutations(vec![Mutation::SetConstant {
            line: line("Positive_RA_Alt_Thresh[0] = 400;"),
            occurrence: 1,
            value: 300,
        }]),
        faulty_lines: vec![line("Positive_RA_Alt_Thresh[0] = 400;")],
        error_count: 1,
        error_type: ErrorType::Const,
    });
    // v3: off-by-something in the enablement altitude-rate threshold.
    // (Constants on that line in walk order: the `!= 0`, then `<= 600`,
    // then `> 600`.)
    versions.push(FaultyVersion {
        name: "v3",
        spec: FaultSpec::Mutations(vec![Mutation::SetConstant {
            line: line("Own_Tracked_Alt_Rate <= 600"),
            occurrence: 1,
            value: 700,
        }]),
        faulty_lines: vec![line("Own_Tracked_Alt_Rate <= 600")],
        error_count: 1,
        error_type: ErrorType::Const,
    });
    // v4: MAXALTDIFF 600 -> 540 in the enablement check.
    versions.push(FaultyVersion {
        name: "v4",
        spec: FaultSpec::Mutations(vec![Mutation::SetConstant {
            line: line("Cur_Vertical_Sep > 600"),
            occurrence: 2,
            value: 540,
        }]),
        faulty_lines: vec![line("Cur_Vertical_Sep > 600")],
        error_count: 1,
        error_type: ErrorType::Const,
    });
    // v5: wrong resolution-advisory altitude threshold for layer 3.
    versions.push(FaultyVersion {
        name: "v5",
        spec: FaultSpec::Mutations(vec![Mutation::SetConstant {
            line: line("Positive_RA_Alt_Thresh[3] = 740;"),
            occurrence: 1,
            value: 600,
        }]),
        faulty_lines: vec![line("Positive_RA_Alt_Thresh[3] = 740;")],
        error_count: 1,
        error_type: ErrorType::Const,
    });

    // ---- op faults ---------------------------------------------------------
    // v6: `>=` confused with `>` in the climb advisory ALIM comparison.
    versions.push(FaultyVersion {
        name: "v6",
        spec: FaultSpec::Mutations(vec![Mutation::ReplaceOperator {
            line: line("result = !Own_Below_Threat() || !(Down_Separation >= ALIM())"),
            occurrence: 1,
            new_op: BinOp::Gt,
        }]),
        faulty_lines: vec![line(
            "result = !Own_Below_Threat() || !(Down_Separation >= ALIM())",
        )],
        error_count: 1,
        error_type: ErrorType::Op,
    });
    // v7: `>` confused with `>=` in Inhibit_Biased_Climb vs Down_Separation.
    versions.push(FaultyVersion {
        name: "v7",
        spec: FaultSpec::Mutations(vec![Mutation::ReplaceOperator {
            line: line("int upward_preferred = Inhibit_Biased_Climb() > Down_Separation;"),
            occurrence: 0,
            new_op: BinOp::Ge,
        }]),
        faulty_lines: vec![line(
            "int upward_preferred = Inhibit_Biased_Climb() > Down_Separation;",
        )],
        error_count: 1,
        error_type: ErrorType::Op,
    });
    // v8: `<` confused with `<=` in Own_Below_Threat.
    versions.push(FaultyVersion {
        name: "v8",
        spec: FaultSpec::Mutations(vec![Mutation::ReplaceOperator {
            line: line("return Own_Tracked_Alt < Other_Tracked_Alt;"),
            occurrence: 0,
            new_op: BinOp::Le,
        }]),
        faulty_lines: vec![line("return Own_Tracked_Alt < Other_Tracked_Alt;")],
        error_count: 1,
        error_type: ErrorType::Op,
    });
    // v9: `<` confused with `>` in Own_Above_Threat.
    versions.push(FaultyVersion {
        name: "v9",
        spec: FaultSpec::Mutations(vec![Mutation::ReplaceOperator {
            line: line("return Other_Tracked_Alt < Own_Tracked_Alt;"),
            occurrence: 0,
            new_op: BinOp::Le,
        }]),
        faulty_lines: vec![line("return Other_Tracked_Alt < Own_Tracked_Alt;")],
        error_count: 1,
        error_type: ErrorType::Op,
    });
    // v10: `<=` confused with `<` in the enablement check. (Operators on
    // that line in walk order: the two `&&`, then `!=`, `<=`, `>`.)
    versions.push(FaultyVersion {
        name: "v10",
        spec: FaultSpec::Mutations(vec![Mutation::ReplaceOperator {
            line: line("Own_Tracked_Alt_Rate <= 600"),
            occurrence: 3,
            new_op: BinOp::Lt,
        }]),
        faulty_lines: vec![line("Own_Tracked_Alt_Rate <= 600")],
        error_count: 1,
        error_type: ErrorType::Op,
    });
    // v11: `||` confused with `&&` in the descend advisory's else branch.
    // (The climb/descend then-branches are shielded by the threat predicates
    // — the paper makes the same observation for Non_Crossing_Biased_Climb —
    // so the fault goes into the observable else branch.)
    versions.push(FaultyVersion {
        name: "v11",
        spec: FaultSpec::Mutations(vec![Mutation::ReplaceOperator {
            line: line("result = !Own_Above_Threat() || (Own_Above_Threat() && (Up_Separation >= ALIM()));"),
            occurrence: 0,
            new_op: BinOp::And,
        }]),
        faulty_lines: vec![line("result = !Own_Above_Threat() || (Own_Above_Threat() && (Up_Separation >= ALIM()));")],
        error_count: 1,
        error_type: ErrorType::Op,
    });
    // v12: equality against the wrong capability constant comparison operator.
    versions.push(FaultyVersion {
        name: "v12",
        spec: FaultSpec::Mutations(vec![Mutation::ReplaceOperator {
            line: line("int tcas_equipped = Other_Capability == 1;"),
            occurrence: 0,
            new_op: BinOp::Ne,
        }]),
        faulty_lines: vec![line("int tcas_equipped = Other_Capability == 1;")],
        error_count: 1,
        error_type: ErrorType::Op,
    });

    // ---- branch faults -----------------------------------------------------
    // v13: negated branch on upward_preferred in the climb advisory.
    versions.push(FaultyVersion {
        name: "v13",
        spec: FaultSpec::Patch {
            from: "    if (upward_preferred != 0) {\n        result = !Own_Below_Threat() || !(Down_Separation >= ALIM());",
            to: "    if (!(upward_preferred != 0)) {\n        result = !Own_Below_Threat() || !(Down_Separation >= ALIM());",
        },
        faulty_lines: vec![Line(line("int Non_Crossing_Biased_Climb() {").0 + 3)],
        error_count: 1,
        error_type: ErrorType::Branch,
    });
    // v14: negated enablement condition.
    versions.push(FaultyVersion {
        name: "v14",
        spec: FaultSpec::Patch {
            from: "if (enabled != 0 && ((tcas_equipped != 0 && intent_not_known != 0) || tcas_equipped == 0)) {",
            to: "if (!(enabled != 0 && ((tcas_equipped != 0 && intent_not_known != 0) || tcas_equipped == 0))) {",
        },
        faulty_lines: vec![line("if (enabled != 0 && ((tcas_equipped != 0")],
        error_count: 1,
        error_type: ErrorType::Branch,
    });

    // ---- init faults -------------------------------------------------------
    // v15: wrong threshold table entry (mirrors the real suite's init faults).
    versions.push(FaultyVersion {
        name: "v15",
        spec: FaultSpec::Mutations(vec![Mutation::SetConstant {
            line: line("Positive_RA_Alt_Thresh[2] = 640;"),
            occurrence: 1,
            value: 540,
        }]),
        faulty_lines: vec![line("Positive_RA_Alt_Thresh[2] = 640;")],
        error_count: 1,
        error_type: ErrorType::Init,
    });
    // v16: alt_sep initialized to a non-UNRESOLVED value.
    versions.push(FaultyVersion {
        name: "v16",
        spec: FaultSpec::Mutations(vec![Mutation::SetConstant {
            line: line("int alt_sep = 0;"),
            occurrence: 0,
            value: 2,
        }]),
        faulty_lines: vec![line("int alt_sep = 0;")],
        error_count: 1,
        error_type: ErrorType::Init,
    });

    // ---- index fault -------------------------------------------------------
    // v17: threshold written to the wrong table slot.
    versions.push(FaultyVersion {
        name: "v17",
        spec: FaultSpec::Mutations(vec![Mutation::BumpConstant {
            line: line("Positive_RA_Alt_Thresh[1] = 500;"),
            occurrence: 0,
            delta: 1,
        }]),
        faulty_lines: vec![line("Positive_RA_Alt_Thresh[1] = 500;")],
        error_count: 1,
        error_type: ErrorType::Index,
    });

    // ---- assign fault ------------------------------------------------------
    // v18: need_downward_RA ignores the descend advisory entirely.
    versions.push(FaultyVersion {
        name: "v18",
        spec: FaultSpec::Mutations(vec![Mutation::ReplaceAssignValue {
            line: line("need_downward_RA = Non_Crossing_Biased_Descend() && Own_Above_Threat();"),
            value: parse_expr("Own_Above_Threat()").expect("expression parses"),
        }]),
        faulty_lines: vec![line(
            "need_downward_RA = Non_Crossing_Biased_Descend() && Own_Above_Threat();",
        )],
        error_count: 1,
        error_type: ErrorType::Assign,
    });

    // ---- code / addcode faults ---------------------------------------------
    // v19: logical coding bug — the descend advisory's else-branch drops the
    // ALIM comparison entirely, making the advisory unconditionally allowed.
    versions.push(FaultyVersion {
        name: "v19",
        spec: FaultSpec::Patch {
            from: "result = !Own_Above_Threat() || (Own_Above_Threat() && (Up_Separation >= ALIM()));",
            to: "result = !Own_Above_Threat() || Own_Above_Threat();",
        },
        faulty_lines: vec![line("result = !Own_Above_Threat() || (Own_Above_Threat() && (Up_Separation >= ALIM()));")],
        error_count: 1,
        error_type: ErrorType::Code,
    });
    // v20: extra code fragment biases Down_Separation before the comparison.
    versions.push(FaultyVersion {
        name: "v20",
        spec: FaultSpec::Patch {
            from: "int alt_sep_test() {\n    int enabled =",
            to: "int alt_sep_test() {\n    Down_Separation = Down_Separation + 60; int enabled =",
        },
        faulty_lines: vec![Line(line("int alt_sep_test() {").0 + 1)],
        error_count: 1,
        error_type: ErrorType::AddCode,
    });

    versions
}

/// Generates a deterministic pool of TCAS input vectors over the same domains
/// the Siemens pool covers (the original vectors are not redistributable).
///
/// Like the original pool, the generator is biased towards boundary values —
/// separations equal to the resolution-advisory thresholds, altitude rates at
/// the enablement limit, equal own/other altitudes — because that is where
/// the injected operator and off-by-one faults become observable.
pub fn tcas_test_vectors(count: usize, seed: u64) -> Vec<Vec<i64>> {
    const THRESHOLDS: [i64; 4] = [400, 500, 640, 740];
    // A small crafted prefix systematically covers the advisory boundaries
    // (each altitude layer, separations at/just under the layer threshold,
    // own aircraft below and above the threat, climb inhibit on and off) so
    // that every injected fault in the catalogue has killing tests, just as
    // the hand-written Siemens pool does.
    let mut crafted: Vec<Vec<i64>> = Vec::new();
    for alv in 0..4i64 {
        let threshold = THRESHOLDS[alv as usize];
        for offset in [-1i64, 0, -80] {
            for below in [true, false] {
                for ci in [0i64, 1] {
                    let (own_alt, other_alt) = if below { (4000, 4500) } else { (4500, 4000) };
                    let sep = threshold + offset;
                    crafted.push(vec![
                        601,            // Cur_Vertical_Sep: just over MAXALTDIFF
                        1,              // High_Confidence
                        1,              // Two_of_Three_Reports_Valid
                        own_alt,        // Own_Tracked_Alt
                        600,            // Own_Tracked_Alt_Rate: at the OLEV bound
                        other_alt,      // Other_Tracked_Alt
                        alv,            // Alt_Layer_Value
                        sep,            // Up_Separation
                        sep + 100 * ci, // Down_Separation: ties with the biased climb
                        0,              // Other_RAC
                        1,              // Other_Capability
                        ci,             // Climb_Inhibit
                    ]);
                    crafted.push(vec![
                        700,
                        1,
                        1,
                        own_alt,
                        599,
                        other_alt,
                        alv,
                        sep + 120,
                        sep,
                        0,
                        2,
                        ci,
                    ]);
                }
            }
        }
    }
    crafted.truncate(count);
    let remaining = count - crafted.len();
    let mut rng = SplitMix64::seed_from_u64(seed);
    let separation = |rng: &mut SplitMix64| -> i64 {
        match rng.gen_range(0..5) {
            0 => THRESHOLDS[rng.gen_range(0usize..4)] + rng.gen_range(-1i64..=1),
            1 => THRESHOLDS[rng.gen_range(0usize..4)],
            2 => THRESHOLDS[rng.gen_range(0usize..4)] - rng.gen_range(1i64..130),
            _ => rng.gen_range(0..1000),
        }
    };
    let random = (0..remaining).map(|_| {
        let own_alt = rng.gen_range(500..9000);
        // Other altitude is frequently close to (or exactly at) our own.
        let other_alt = match rng.gen_range(0..4) {
            0 => own_alt,
            1 => own_alt + rng.gen_range(-3i64..=3),
            _ => rng.gen_range(500..9000),
        };
        let alt_rate = if rng.gen_bool(0.3) {
            600 + rng.gen_range(-1i64..=1)
        } else {
            rng.gen_range(0..1200)
        };
        let cvs = if rng.gen_bool(0.3) {
            600 + rng.gen_range(-1i64..=2)
        } else {
            rng.gen_range(0..1200)
        };
        let up_sep = separation(&mut rng);
        // Down separation is often tied to the (possibly biased) up
        // separation so that the climb/descend preference flips.
        let down_sep = match rng.gen_range(0..4) {
            0 => up_sep,
            1 => up_sep + 100,
            _ => separation(&mut rng),
        };
        vec![
            cvs,                          // Cur_Vertical_Sep
            i64::from(rng.gen_bool(0.7)), // High_Confidence
            rng.gen_range(0..=1),         // Two_of_Three_Reports_Valid
            own_alt,                      // Own_Tracked_Alt
            alt_rate,                     // Own_Tracked_Alt_Rate
            other_alt,                    // Other_Tracked_Alt
            rng.gen_range(0..=3),         // Alt_Layer_Value
            up_sep,                       // Up_Separation
            down_sep,                     // Down_Separation
            rng.gen_range(0..=3),         // Other_RAC
            rng.gen_range(1..=2),         // Other_Capability
            rng.gen_range(0..=1),         // Climb_Inhibit
        ]
    });
    crafted.extend(random);
    crafted
}

/// Interpreter configuration used for TCAS (values stay well inside 16 bits).
pub fn tcas_interp_config() -> InterpConfig {
    InterpConfig {
        width: 16,
        max_steps: 100_000,
    }
}

/// Runs the correct TCAS program on one input — the golden output.
pub fn tcas_golden_output(input: &[i64]) -> i64 {
    let program = tcas_program();
    run_program(&program, TCAS_ENTRY, input, &[], tcas_interp_config())
        .result
        .expect("the correct TCAS program always returns")
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::check_program;

    #[test]
    fn base_program_parses_and_typechecks() {
        let program = tcas_program();
        let errors = check_program(&program);
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(
            program.function(TCAS_ENTRY).unwrap().params.len(),
            TCAS_ARITY
        );
    }

    #[test]
    fn golden_outputs_are_valid_advisories() {
        for input in tcas_test_vectors(50, 1) {
            let out = tcas_golden_output(&input);
            assert!(
                [
                    advisory::UNRESOLVED,
                    advisory::UPWARD_RA,
                    advisory::DOWNWARD_RA
                ]
                .contains(&out),
                "unexpected advisory {out} for {input:?}"
            );
        }
    }

    #[test]
    fn golden_outputs_exercise_all_advisories() {
        let vectors = tcas_test_vectors(400, 7);
        let outputs: Vec<i64> = vectors.iter().map(|v| tcas_golden_output(v)).collect();
        assert!(outputs.contains(&advisory::UNRESOLVED));
        assert!(outputs.contains(&advisory::UPWARD_RA));
        assert!(outputs.contains(&advisory::DOWNWARD_RA));
    }

    #[test]
    fn every_version_builds_and_differs_from_base() {
        let base = tcas_program();
        for version in tcas_versions() {
            let faulty = version.build(TCAS_SOURCE);
            assert_ne!(
                faulty, base,
                "version {} must change the program",
                version.name
            );
            assert!(!version.faulty_lines.is_empty());
            assert!(version.error_count >= 1);
        }
    }

    #[test]
    fn every_version_fails_some_test() {
        let vectors = tcas_test_vectors(1200, 42);
        let golden: Vec<i64> = vectors.iter().map(|v| tcas_golden_output(v)).collect();
        for version in tcas_versions() {
            let faulty = version.build(TCAS_SOURCE);
            let failing = vectors
                .iter()
                .zip(&golden)
                .filter(|(input, expected)| {
                    let out = run_program(&faulty, TCAS_ENTRY, input, &[], tcas_interp_config());
                    out.result != Some(**expected) || !out.is_ok()
                })
                .count();
            assert!(
                failing > 0,
                "version {} is not detected by the generated pool",
                version.name
            );
        }
    }

    #[test]
    fn trusted_lines_cover_the_input_copies() {
        let trusted = tcas_trusted_lines();
        assert_eq!(trusted.len(), 14);
        let program = tcas_program();
        let all_lines = program.statement_lines();
        for line in &trusted {
            assert!(all_lines.contains(line), "{line} is not a statement line");
        }
    }

    #[test]
    fn test_vectors_are_deterministic() {
        assert_eq!(tcas_test_vectors(10, 3), tcas_test_vectors(10, 3));
        assert_eq!(tcas_test_vectors(200, 3), tcas_test_vectors(200, 3));
        // Beyond the crafted boundary prefix the pool is seed-dependent.
        assert_ne!(tcas_test_vectors(200, 3), tcas_test_vectors(200, 4));
        assert!(tcas_test_vectors(200, 3)
            .iter()
            .all(|v| v.len() == TCAS_ARITY));
    }
}
