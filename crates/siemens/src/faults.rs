//! The fault taxonomy of Table 2 of the paper, and the description of one
//! injected-fault benchmark version.

use minic::ast::Line;
use minic::{apply_mutation, parse_program, Mutation, Program};
use std::fmt;

/// The error types of Table 2.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ErrorType {
    /// Wrong operator usage (e.g. `<=` instead of `<`).
    Op,
    /// Logical coding bug (an expression rewritten wholesale).
    Code,
    /// Wrong assignment expression.
    Assign,
    /// Error due to extra code fragments.
    AddCode,
    /// Wrong constant value supplied (e.g. off-by-one).
    Const,
    /// Wrong value initialization of a variable.
    Init,
    /// Use of a wrong array index.
    Index,
    /// Error in branching due to negation of the branching condition.
    Branch,
}

impl ErrorType {
    /// The label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            ErrorType::Op => "op",
            ErrorType::Code => "code",
            ErrorType::Assign => "assign",
            ErrorType::AddCode => "addcode",
            ErrorType::Const => "const",
            ErrorType::Init => "init",
            ErrorType::Index => "index",
            ErrorType::Branch => "branch",
        }
    }

    /// The explanation given in Table 2.
    pub fn explanation(self) -> &'static str {
        match self {
            ErrorType::Op => "wrong operator usage, e.g. <= instead of <",
            ErrorType::Code => "logical coding bug",
            ErrorType::Assign => "wrong assignment expression",
            ErrorType::AddCode => "error due to extra code fragments",
            ErrorType::Const => "wrong constant value supplied, e.g. off-by-one",
            ErrorType::Init => "wrong value initialization of a variable",
            ErrorType::Index => "use of wrong array index",
            ErrorType::Branch => "error in branching due to negation of the branching condition",
        }
    }

    /// All error types, in the order Table 2 lists them.
    pub fn all() -> [ErrorType; 8] {
        [
            ErrorType::Op,
            ErrorType::Code,
            ErrorType::Assign,
            ErrorType::AddCode,
            ErrorType::Const,
            ErrorType::Init,
            ErrorType::Index,
            ErrorType::Branch,
        ]
    }
}

impl fmt::Display for ErrorType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// How a faulty version is produced from the base program.
#[derive(Clone, Debug)]
pub enum FaultSpec {
    /// Apply one or more [`Mutation`]s to the base program.
    Mutations(Vec<Mutation>),
    /// Textually replace `from` by `to` in the base source (used for `code`
    /// and `addcode` faults that a structured mutation cannot express).
    /// Patches never change line counts so that line numbers stay stable.
    Patch {
        /// Substring of the base source to replace (must occur exactly once).
        from: &'static str,
        /// Replacement text (must not contain newlines).
        to: &'static str,
    },
}

/// One injected-fault benchmark version (analogous to the Siemens "v1"…"v41"
/// versions).
#[derive(Clone, Debug)]
pub struct FaultyVersion {
    /// Version name, e.g. `"v1"`.
    pub name: &'static str,
    /// How the fault is injected.
    pub spec: FaultSpec,
    /// The line(s) a human would point to as "the bug" (ground truth for the
    /// paper's Detect# column).
    pub faulty_lines: Vec<Line>,
    /// Number of injected faults (the paper's Error# column).
    pub error_count: usize,
    /// Taxonomy entry (Table 2).
    pub error_type: ErrorType,
}

impl FaultyVersion {
    /// Materializes the faulty program from the base program's source text.
    ///
    /// # Panics
    ///
    /// Panics if the mutation or patch cannot be applied or the result does
    /// not parse — both indicate a broken benchmark definition and are
    /// caught by the crate's tests.
    pub fn build(&self, base_source: &str) -> Program {
        match &self.spec {
            FaultSpec::Mutations(mutations) => {
                let mut program = parse_program(base_source)
                    .unwrap_or_else(|e| panic!("version {}: base does not parse: {e}", self.name));
                for mutation in mutations {
                    program = apply_mutation(&program, mutation)
                        .unwrap_or_else(|e| panic!("version {}: {e}", self.name));
                }
                program
            }
            FaultSpec::Patch { from, to } => {
                assert_eq!(
                    base_source.matches(from).count(),
                    1,
                    "version {}: patch source must occur exactly once",
                    self.name
                );
                assert_eq!(
                    from.matches('\n').count(),
                    to.matches('\n').count(),
                    "version {}: patches must not change line numbering",
                    self.name
                );
                let patched = base_source.replacen(from, to, 1);
                parse_program(&patched).unwrap_or_else(|e| {
                    panic!("version {}: patched source does not parse: {e}", self.name)
                })
            }
        }
    }
}

/// Returns the 1-based line of the first source line containing `pattern`.
///
/// Benchmark fault catalogues use this instead of hard-coded line numbers so
/// that cosmetic edits to the benchmark sources do not silently invalidate
/// the ground truth.
///
/// # Panics
///
/// Panics if the pattern does not occur.
pub fn line_containing(source: &str, pattern: &str) -> Line {
    for (i, line) in source.lines().enumerate() {
        if line.contains(pattern) {
            return Line(i as u32 + 1);
        }
    }
    panic!("pattern {pattern:?} not found in benchmark source");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_is_complete_and_labelled() {
        assert_eq!(ErrorType::all().len(), 8);
        for ty in ErrorType::all() {
            assert!(!ty.label().is_empty());
            assert!(!ty.explanation().is_empty());
            assert_eq!(ty.to_string(), ty.label());
        }
    }

    #[test]
    fn mutation_fault_builds() {
        let base_source = "int main(int x) {\nint y = x + 1;\nreturn y;\n}";
        let version = FaultyVersion {
            name: "vtest",
            spec: FaultSpec::Mutations(vec![Mutation::BumpConstant {
                line: Line(2),
                occurrence: 0,
                delta: 1,
            }]),
            faulty_lines: vec![Line(2)],
            error_count: 1,
            error_type: ErrorType::Const,
        };
        let faulty = version.build(base_source);
        assert_ne!(faulty, parse_program(base_source).unwrap());
        assert!(minic::pretty_program(&faulty).contains("x + 2"));
    }

    #[test]
    fn patch_fault_builds_and_preserves_lines() {
        let base_source = "int main(int x) {\nint y = x + 1;\nreturn y;\n}";
        let version = FaultyVersion {
            name: "vpatch",
            spec: FaultSpec::Patch {
                from: "int y = x + 1;",
                to: "int y = x + 1; y = y * 2;",
            },
            faulty_lines: vec![Line(2)],
            error_count: 1,
            error_type: ErrorType::AddCode,
        };
        let faulty = version.build(base_source);
        assert!(minic::pretty_program(&faulty).contains("y * 2"));
    }

    #[test]
    fn line_containing_locates_patterns() {
        let src = "int main() {\nint a = 0;\nreturn a;\n}";
        assert_eq!(line_containing(src, "int a"), Line(2));
        assert_eq!(line_containing(src, "return"), Line(3));
    }

    #[test]
    #[should_panic(expected = "not found")]
    fn line_containing_panics_on_missing_pattern() {
        let _ = line_containing("int main() { return 0; }", "absent");
    }
}
