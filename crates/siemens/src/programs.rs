//! The remaining benchmark programs: MinC analogues of the larger Siemens
//! programs used in Table 3 (tot_info, print_tokens, schedule, schedule2)
//! plus the paper's two worked examples — the `strncat` off-by-one demo
//! (Program 2, Sec. 6.3) and the integer square-root loop (Program 3,
//! Sec. 6.4).
//!
//! The analogues are deliberately smaller than the originals (the originals
//! are not redistributable and full-size C is out of scope for MinC), but
//! they preserve the structural features Table 3 leans on: loops that need
//! unwinding, procedure calls, a recursion analogue, and input-dependent
//! traces, so the *shape* of the trace-reduction results carries over.

use crate::faults::{line_containing, ErrorType, FaultSpec, FaultyVersion};
use minic::ast::Line;
use minic::{parse_program, Mutation, Program};

/// A complete benchmark description: base source, entry point, injected
/// fault, test inputs and encoding parameters.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// Benchmark name (matches the paper's program names where applicable).
    pub name: &'static str,
    /// Correct source.
    pub source: &'static str,
    /// Entry function.
    pub entry: &'static str,
    /// The injected fault.
    pub fault: FaultyVersion,
    /// Lines that must not be blamed (library code).
    pub trusted_lines: Vec<Line>,
    /// Test input pool (entry-function arguments).
    pub test_inputs: Vec<Vec<i64>>,
    /// Trace-reduction technique label used in Table 3 ("S", "C", "DS", …).
    pub reduction: &'static str,
    /// Functions to concretize during encoding (the "C" reduction).
    pub concretize: Vec<String>,
    /// Loop unwinding bound for the symbolic encoding.
    pub unwind: usize,
    /// Bit width for the symbolic encoding.
    pub width: usize,
}

impl Benchmark {
    /// Parses the correct program.
    pub fn program(&self) -> Program {
        parse_program(self.source).expect("benchmark source parses")
    }

    /// Builds the faulty version.
    pub fn faulty_program(&self) -> Program {
        self.fault.build(self.source)
    }

    /// Runs the correct program on an input and returns its result (the
    /// golden output).
    pub fn golden_output(&self, input: &[i64]) -> Option<i64> {
        let config = bmc::InterpConfig {
            width: self.width,
            max_steps: 200_000,
        };
        let outcome = bmc::run_program(&self.program(), self.entry, input, &[], config);
        if outcome.is_ok() {
            outcome.result
        } else {
            None
        }
    }

    /// The test inputs on which the faulty version deviates from the golden
    /// output or crashes.
    pub fn failing_inputs(&self) -> Vec<Vec<i64>> {
        let config = bmc::InterpConfig {
            width: self.width,
            max_steps: 200_000,
        };
        let faulty = self.faulty_program();
        self.test_inputs
            .iter()
            .filter(|input| {
                let outcome = bmc::run_program(&faulty, self.entry, input, &[], config);
                match self.golden_output(input) {
                    Some(expected) => !outcome.is_ok() || outcome.result != Some(expected),
                    None => false,
                }
            })
            .cloned()
            .collect()
    }
}

// ---------------------------------------------------------------------------
// tot_info analogue
// ---------------------------------------------------------------------------

/// `tot_info` analogue: row/column statistics over a small table with a
/// divisor check. The injected fault is the wrong constant in the conditional
/// on the row×column product — the same fault the paper describes for its
/// tot_info run.
pub const TOTINFO_SOURCE: &str = "\
int table[6];
int row_sum[2];
int col_sum[3];
int scratch[6];
int fill(int a, int b, int c) {
    int i = 0;
    while (i < 6) {
        table[i] = (a * i + b) % 19 + c % 7;
        i = i + 1;
    }
    return 0;
}
int totals() {
    int r = 0;
    while (r < 2) {
        int cc = 0;
        int acc = 0;
        while (cc < 3) {
            acc = acc + table[r * 3 + cc];
            cc = cc + 1;
        }
        row_sum[r] = acc;
        r = r + 1;
    }
    int c2 = 0;
    while (c2 < 3) {
        int rr = 0;
        int acc2 = 0;
        while (rr < 2) {
            acc2 = acc2 + table[rr * 3 + c2];
            rr = rr + 1;
        }
        col_sum[c2] = acc2;
        c2 = c2 + 1;
    }
    return 0;
}
int report_stats(int a, int b) {
    int k = 0;
    while (k < 6) {
        scratch[k] = (table[k] * 7 + a * b) % 31;
        k = k + 1;
    }
    return scratch[0];
}
int info(int rows, int cols) {
    if (rows * cols > 6) {
        return 0 - 1;
    }
    int total = row_sum[0] + row_sum[1];
    if (total == 0) {
        return 0 - 2;
    }
    int stat = 0;
    int r = 0;
    while (r < rows) {
        int c = 0;
        while (c < cols) {
            int expected = row_sum[r] * col_sum[c] / total;
            int observed = table[r * 3 + c];
            int diff = observed - expected;
            stat = stat + diff * diff;
            c = c + 1;
        }
        r = r + 1;
    }
    return stat;
}
int main(int a, int b, int c) {
    assume(a >= 0 && a < 8);
    assume(b >= 0 && b < 8);
    assume(c >= 0 && c < 8);
    fill(a, b, c);
    totals();
    report_stats(a, b);
    return info(2, 3);
}
";

/// Builds the tot_info benchmark description.
pub fn totinfo() -> Benchmark {
    let fault_line = line_containing(TOTINFO_SOURCE, "if (rows * cols > 6) {");
    Benchmark {
        name: "tot_info",
        source: TOTINFO_SOURCE,
        entry: "main",
        fault: FaultyVersion {
            name: "totinfo-f1",
            // The guard constant is wrong: 6 becomes 4, so legitimate
            // 2x3 tables are rejected.
            spec: FaultSpec::Mutations(vec![Mutation::SetConstant {
                line: fault_line,
                occurrence: 0,
                value: 4,
            }]),
            faulty_lines: vec![fault_line],
            error_count: 1,
            error_type: ErrorType::Const,
        },
        trusted_lines: Vec::new(),
        test_inputs: (0..6)
            .map(|a| vec![a, (a * 3 + 1) % 8, (a + 5) % 8])
            .collect(),
        reduction: "S",
        concretize: Vec::new(),
        unwind: 7,
        width: 16,
    }
}

// ---------------------------------------------------------------------------
// print_tokens analogue
// ---------------------------------------------------------------------------

/// `print_tokens` analogue: classify a fixed-length stream of character codes
/// into token classes with a helper that is called once per position (the
/// original uses a recursive `next_token`; the paper concretizes it). The
/// fault is a wrong comparison in the classifier.
pub const PRINTTOKENS_SOURCE: &str = "\
int classify(int ch) {
    if (ch >= 48 && ch <= 57) {
        return 1;
    }
    if (ch >= 65 && ch <= 90) {
        return 2;
    }
    if (ch >= 97 && ch <= 122) {
        return 2;
    }
    if (ch == 40 || ch == 41) {
        return 3;
    }
    if (ch == 32 || ch == 9) {
        return 0;
    }
    return 4;
}
int checksum(int kind, int acc) {
    return acc * 5 + kind;
}
int mixer(int a, int b) {
    int m = a * a + b * b;
    int n = m * 3 + a * b;
    return n % 97 + 1;
}
int main(int c0, int c1, int c2, int c3, int c4, int c5, int c6, int c7) {
    int stream[8];
    stream[0] = c0;
    stream[1] = c1;
    stream[2] = c2;
    stream[3] = c3;
    stream[4] = c4;
    stream[5] = c5;
    stream[6] = c6;
    stream[7] = c7;
    int scale = mixer(7, 3);
    int acc = 0;
    int i = 0;
    while (i < 8) {
        int kind = classify(stream[i]);
        acc = checksum(kind, acc + scale);
        i = i + 1;
    }
    return acc;
}
";

/// Builds the print_tokens benchmark description.
pub fn printtokens() -> Benchmark {
    let fault_line = line_containing(PRINTTOKENS_SOURCE, "if (ch >= 48 && ch <= 57) {");
    Benchmark {
        name: "print_tokens",
        source: PRINTTOKENS_SOURCE,
        entry: "main",
        fault: FaultyVersion {
            name: "printtokens-f1",
            // Digit classification uses `>` instead of `>=`: the character
            // code 48 ('0') is no longer recognized as a digit.
            spec: FaultSpec::Mutations(vec![Mutation::ReplaceOperator {
                line: fault_line,
                occurrence: 1,
                new_op: minic::BinOp::Gt,
            }]),
            faulty_lines: vec![fault_line],
            error_count: 1,
            error_type: ErrorType::Op,
        },
        trusted_lines: Vec::new(),
        test_inputs: vec![
            vec![48, 49, 65, 97, 40, 32, 57, 41],
            vec![48, 48, 48, 48, 48, 48, 48, 48],
            vec![65, 66, 67, 48, 49, 50, 32, 41],
            vec![97, 48, 9, 40, 41, 57, 90, 122],
            vec![33, 48, 64, 91, 96, 123, 47, 58],
        ],
        reduction: "C",
        concretize: vec!["mixer".to_string()],
        unwind: 9,
        width: 16,
    }
}

// ---------------------------------------------------------------------------
// schedule analogue
// ---------------------------------------------------------------------------

/// `schedule` analogue: a tiny priority scheduler over a fixed-size queue.
/// Processes are appended with priorities derived from the input, then the
/// queue is flushed; the injected fault is the paper's off-by-one on the
/// number of processes flushed.
pub const SCHEDULE_SOURCE: &str = "\
int queue[8];
int enqueue(int count, int prio) {
    if (count < 8) {
        queue[count] = prio;
        return count + 1;
    }
    return count;
}
int flush_all(int count) {
    int finished = 0;
    int i = 0;
    while (i < count) {
        finished = finished + queue[i] + 1;
        i = i + 1;
    }
    return finished;
}
int main(int n, int p0, int p1, int p2) {
    assume(n >= 1 && n <= 4);
    assume(p0 >= 0 && p0 < 10);
    assume(p1 >= 0 && p1 < 10);
    assume(p2 >= 0 && p2 < 10);
    int count = 0;
    count = enqueue(count, p0);
    if (n > 1) {
        count = enqueue(count, p1);
    }
    if (n > 2) {
        count = enqueue(count, p2);
    }
    if (n > 3) {
        count = enqueue(count, p0 + p1);
    }
    int total = flush_all(count);
    return total;
}
";

fn schedule_fault() -> FaultyVersion {
    // The paper's schedule fault is an off-by-one on the number of processes
    // flushed: the faulty version drains one slot too many.
    let fault_line = line_containing(SCHEDULE_SOURCE, "while (i < count) {");
    FaultyVersion {
        name: "schedule-f1",
        spec: FaultSpec::Patch {
            from: "while (i < count) {",
            to: "while (i < count + 1) {",
        },
        faulty_lines: vec![fault_line],
        error_count: 1,
        error_type: ErrorType::Const,
    }
}

/// Builds the `schedule` benchmark with a *small* failure-inducing input
/// (Table 3, row 3): a single process creation suffices to expose the bug.
pub fn schedule_small() -> Benchmark {
    Benchmark {
        name: "schedule",
        source: SCHEDULE_SOURCE,
        entry: "main",
        fault: schedule_fault(),
        trusted_lines: Vec::new(),
        test_inputs: vec![vec![1, 3, 0, 0], vec![1, 7, 0, 0], vec![2, 3, 4, 0]],
        reduction: "DS",
        concretize: Vec::new(),
        unwind: 6,
        width: 16,
    }
}

/// Builds the `schedule` benchmark with a *larger* failure-inducing input
/// (Table 3, row 4): more processes and a longer trace before the deviation.
pub fn schedule_large() -> Benchmark {
    Benchmark {
        name: "schedule (large input)",
        source: SCHEDULE_SOURCE,
        entry: "main",
        fault: schedule_fault(),
        trusted_lines: Vec::new(),
        test_inputs: vec![vec![4, 9, 8, 7], vec![4, 1, 2, 3], vec![3, 5, 5, 5]],
        reduction: "DS",
        concretize: Vec::new(),
        unwind: 10,
        width: 16,
    }
}

// ---------------------------------------------------------------------------
// schedule2 analogue
// ---------------------------------------------------------------------------

/// `schedule2` analogue: a round-robin style scheduler where the quantum
/// accounting carries a wrong-operator fault.
pub const SCHEDULE2_SOURCE: &str = "\
int remaining[4];
int run_quantum(int pid, int quantum) {
    int left = remaining[pid] - quantum;
    if (left < 0) {
        left = 0;
    }
    remaining[pid] = left;
    return left;
}
int main(int r0, int r1, int r2, int r3, int quantum) {
    assume(r0 >= 0 && r0 < 12);
    assume(r1 >= 0 && r1 < 12);
    assume(r2 >= 0 && r2 < 12);
    assume(r3 >= 0 && r3 < 12);
    assume(quantum >= 1 && quantum <= 4);
    remaining[0] = r0;
    remaining[1] = r1;
    remaining[2] = r2;
    remaining[3] = r3;
    int rounds = 0;
    int active = 1;
    while (active != 0 && rounds < 6) {
        active = 0;
        int pid = 0;
        while (pid < 4) {
            int left = run_quantum(pid, quantum);
            if (left > 0) {
                active = 1;
            }
            pid = pid + 1;
        }
        rounds = rounds + 1;
    }
    return rounds;
}
";

/// Builds the schedule2 benchmark description.
pub fn schedule2() -> Benchmark {
    let fault_line = line_containing(SCHEDULE2_SOURCE, "if (left > 0) {");
    Benchmark {
        name: "schedule2",
        source: SCHEDULE2_SOURCE,
        entry: "main",
        fault: FaultyVersion {
            name: "schedule2-f1",
            // `>` becomes `>=`: finished processes keep the scheduler alive
            // for extra rounds.
            spec: FaultSpec::Mutations(vec![Mutation::ReplaceOperator {
                line: fault_line,
                occurrence: 0,
                new_op: minic::BinOp::Ge,
            }]),
            faulty_lines: vec![fault_line],
            error_count: 1,
            error_type: ErrorType::Op,
        },
        trusted_lines: Vec::new(),
        test_inputs: vec![
            vec![2, 0, 0, 0, 2],
            vec![4, 3, 2, 1, 2],
            vec![1, 1, 1, 1, 1],
            vec![6, 0, 3, 0, 3],
        ],
        reduction: "S",
        concretize: Vec::new(),
        unwind: 7,
        width: 16,
    }
}

// ---------------------------------------------------------------------------
// strncat off-by-one demo (Program 2, Sec. 6.3)
// ---------------------------------------------------------------------------

/// The strncat off-by-one demo. `copy_into` plays the role of `MyFunCopy`,
/// `strncat_impl` is the trusted library routine that writes the terminating
/// zero one position past the copied characters.
pub const STRNCAT_SOURCE: &str = "\
int buf[15];
int src[15];
int strncat_impl(int dest_len, int n) {
    int i = 0;
    while (i < n) {
        buf[dest_len + i] = src[i];
        i = i + 1;
    }
    buf[dest_len + i] = 0;
    return dest_len + i;
}
int copy_into(int len) {
    assume(len >= 0 && len <= 15);
    return strncat_impl(0, 15);
}
int main(int len) {
    return copy_into(len);
}
";

/// Builds the strncat benchmark: the last argument of `strncat_impl` should
/// be `SIZE - 1 = 14`, not `15`, because the library writes one byte past the
/// copied region. The library lines are trusted (hard), exactly as in the
/// paper's experiment.
pub fn strncat_demo() -> Benchmark {
    let call_line = line_containing(STRNCAT_SOURCE, "return strncat_impl(0, 15);");
    // The library body: every line of strncat_impl.
    let trusted: Vec<Line> = [
        "int i = 0;",
        "while (i < n) {",
        "buf[dest_len + i] = src[i];",
        "i = i + 1;",
        "buf[dest_len + i] = 0;",
        "return dest_len + i;",
    ]
    .iter()
    .map(|p| line_containing(STRNCAT_SOURCE, p))
    .collect();
    Benchmark {
        name: "strncat",
        source: STRNCAT_SOURCE,
        entry: "main",
        fault: FaultyVersion {
            name: "strncat-f1",
            // The *source as written* already contains the bug (the paper's
            // Program 2 is presented buggy); the "fault" is the identity so
            // that `faulty_program()` returns it unchanged.
            spec: FaultSpec::Mutations(vec![]),
            faulty_lines: vec![call_line],
            error_count: 1,
            error_type: ErrorType::Const,
        },
        trusted_lines: trusted,
        test_inputs: vec![vec![15], vec![3]],
        reduction: "-",
        concretize: Vec::new(),
        unwind: 16,
        width: 16,
    }
}

// ---------------------------------------------------------------------------
// squareroot (Program 3, Sec. 6.4)
// ---------------------------------------------------------------------------

/// The nearest-integer square-root program of Sec. 6.4, with its bug: the
/// post-loop assignment forgets the `- 1`.
pub const SQUAREROOT_SOURCE: &str = "\
int squareroot(int val) {
    assume(val == 50);
    int i = 1;
    int v = 0;
    int res = 0;
    while (v < val) {
        v = v + 2 * i + 1;
        i = i + 1;
    }
    res = i;
    assert(res * res <= val && (res + 1) * (res + 1) > val);
    return res;
}
";

/// Builds the square-root benchmark (the source is already the buggy version,
/// as printed in the paper; the correct statement would be `res = i - 1;`).
pub fn squareroot() -> Benchmark {
    let fault_line = line_containing(SQUAREROOT_SOURCE, "res = i;");
    Benchmark {
        name: "squareroot",
        source: SQUAREROOT_SOURCE,
        entry: "squareroot",
        fault: FaultyVersion {
            name: "squareroot-f1",
            spec: FaultSpec::Mutations(vec![]),
            faulty_lines: vec![fault_line],
            error_count: 1,
            error_type: ErrorType::Code,
        },
        trusted_lines: Vec::new(),
        test_inputs: vec![vec![50]],
        reduction: "-",
        concretize: Vec::new(),
        unwind: 10,
        width: 16,
    }
}

/// The benchmarks that populate Table 3, in the paper's row order.
pub fn table3_benchmarks() -> Vec<Benchmark> {
    vec![
        totinfo(),
        printtokens(),
        schedule_small(),
        schedule_large(),
        schedule2(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::check_program;

    fn check(benchmark: &Benchmark) {
        let program = benchmark.program();
        let errors = check_program(&program);
        assert!(errors.is_empty(), "{}: {errors:?}", benchmark.name);
        let faulty = benchmark.faulty_program();
        let errors = check_program(&faulty);
        assert!(errors.is_empty(), "faulty {}: {errors:?}", benchmark.name);
    }

    #[test]
    fn all_benchmarks_parse_and_typecheck() {
        for benchmark in table3_benchmarks() {
            check(&benchmark);
        }
        check(&strncat_demo());
        check(&squareroot());
    }

    #[test]
    fn table3_faults_are_detected_by_their_test_pools() {
        for benchmark in table3_benchmarks() {
            let failing = benchmark.failing_inputs();
            assert!(
                !failing.is_empty(),
                "{}: no failing inputs in the pool",
                benchmark.name
            );
        }
    }

    #[test]
    fn correct_versions_have_golden_outputs_for_every_test() {
        for benchmark in table3_benchmarks() {
            for input in &benchmark.test_inputs {
                assert!(
                    benchmark.golden_output(input).is_some(),
                    "{}: correct program fails on {:?}",
                    benchmark.name,
                    input
                );
            }
        }
    }

    #[test]
    fn strncat_demo_overflows_the_buffer() {
        let benchmark = strncat_demo();
        let program = benchmark.faulty_program();
        let outcome = bmc::run_program(
            &program,
            benchmark.entry,
            &[15],
            &[],
            bmc::InterpConfig {
                width: 16,
                max_steps: 100_000,
            },
        );
        assert!(outcome.is_failure(), "{outcome:?}");
        assert_eq!(
            outcome.violation.unwrap().kind,
            bmc::ViolationKind::ArrayBounds
        );
    }

    #[test]
    fn squareroot_assertion_fails_for_50() {
        let benchmark = squareroot();
        let outcome = bmc::run_program(
            &benchmark.program(),
            benchmark.entry,
            &[50],
            &[],
            bmc::InterpConfig {
                width: 16,
                max_steps: 100_000,
            },
        );
        assert!(outcome.is_failure(), "{outcome:?}");
        assert_eq!(
            outcome.violation.unwrap().kind,
            bmc::ViolationKind::AssertionFailure
        );
    }

    #[test]
    fn schedule_large_trace_is_longer_than_small() {
        let small = schedule_small();
        let large = schedule_large();
        let config = bmc::InterpConfig {
            width: 16,
            max_steps: 200_000,
        };
        let steps_small = bmc::run_program(
            &small.program(),
            small.entry,
            &small.test_inputs[0],
            &[],
            config,
        )
        .steps;
        let steps_large = bmc::run_program(
            &large.program(),
            large.entry,
            &large.test_inputs[0],
            &[],
            config,
        )
        .steps;
        assert!(steps_large > steps_small);
    }
}
