//! # siemens — benchmark programs for the BugAssist reproduction
//!
//! The paper evaluates BugAssist on programs from the Siemens test suite with
//! injected faults (Sec. 6). The original suite is not redistributable, so
//! this crate provides MinC ports / analogues together with the machinery the
//! experiments need:
//!
//! * [`tcas`] — a faithful port of the TCAS resolution logic with a
//!   20-version injected-fault catalogue, a deterministic boundary-biased
//!   test-vector generator and golden-output computation (Table 1);
//! * [`programs`] — analogues of tot_info, print_tokens, schedule (small and
//!   large inputs) and schedule2 for the trace-reduction experiment
//!   (Table 3), plus the paper's `strncat` off-by-one demo (Program 2) and
//!   the integer square-root loop (Program 3);
//! * [`faults`] — the fault taxonomy of Table 2 and the
//!   mutation/patch-based fault-injection mechanism.
//!
//! # Examples
//!
//! ```
//! use siemens::tcas::{tcas_program, tcas_versions, tcas_test_vectors, tcas_golden_output, TCAS_ENTRY};
//!
//! let vectors = tcas_test_vectors(20, 1);
//! let golden: Vec<i64> = vectors.iter().map(|v| tcas_golden_output(v)).collect();
//! assert_eq!(golden.len(), 20);
//! assert_eq!(tcas_versions().len(), 20);
//! assert!(tcas_program().function(TCAS_ENTRY).is_some());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod faults;
pub mod programs;
pub mod tcas;

pub use faults::{line_containing, ErrorType, FaultSpec, FaultyVersion};
pub use programs::{
    printtokens, schedule2, schedule_large, schedule_small, squareroot, strncat_demo,
    table3_benchmarks, totinfo, Benchmark,
};
pub use tcas::{
    tcas_golden_output, tcas_interp_config, tcas_program, tcas_test_vectors, tcas_trusted_lines,
    tcas_versions, TCAS_ARITY, TCAS_ENTRY, TCAS_SOURCE,
};
