//! Abstract syntax of MinC, the small C-like imperative language used by the
//! BugAssist reproduction in place of ANSI-C.
//!
//! MinC covers the features the paper's experiments rely on: fixed-width
//! integers, Booleans, statically sized arrays, functions with call-by-value
//! parameters, `if`/`while` control flow, `assert`/`assume`, and the usual
//! arithmetic, comparison, bitwise and logical operators. Every statement
//! carries the source line it came from; those line numbers are the unit of
//! blame for the localization algorithm (Sec. 3.4 of the paper groups clauses
//! per statement).

use std::fmt;

/// A 1-based source line number. Statements are blamed at this granularity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Line(pub u32);

impl Line {
    /// The line number as a plain integer.
    pub fn number(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Line {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}", self.0)
    }
}

/// Types of MinC values.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Type {
    /// Fixed-width two's-complement integer (the width is chosen by the
    /// encoder, not the type).
    Int,
    /// Boolean.
    Bool,
    /// Statically sized integer array.
    Array(usize),
}

impl Type {
    /// Returns `true` for scalar (non-array) types.
    pub fn is_scalar(self) -> bool {
        !matches!(self, Type::Array(_))
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Bool => write!(f, "bool"),
            Type::Array(n) => write!(f, "int[{n}]"),
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnOp {
    /// Arithmetic negation `-e`.
    Neg,
    /// Logical negation `!e`.
    Not,
    /// Bitwise complement `~e`.
    BitNot,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnOp::Neg => write!(f, "-"),
            UnOp::Not => write!(f, "!"),
            UnOp::BitNot => write!(f, "~"),
        }
    }
}

/// Binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (truncating, C semantics; division by zero yields 0 in MinC)
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>` (arithmetic shift)
    Shr,
}

impl BinOp {
    /// Returns `true` for operators producing a Boolean result.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Returns `true` for the short-circuiting logical operators.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// The "mutation neighbours" of an operator: plausible programmer
    /// confusions used by fault injection and by the repair search
    /// (e.g. `<` ↔ `<=`, `+` ↔ `-`).
    pub fn mutation_neighbours(self) -> Vec<BinOp> {
        use BinOp::*;
        match self {
            Lt => vec![Le, Gt, Ge],
            Le => vec![Lt, Ge, Gt],
            Gt => vec![Ge, Lt, Le],
            Ge => vec![Gt, Le, Lt],
            Eq => vec![Ne],
            Ne => vec![Eq],
            Add => vec![Sub],
            Sub => vec![Add],
            Mul => vec![Div],
            Div => vec![Mul],
            And => vec![Or],
            Or => vec![And],
            _ => vec![],
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
        };
        write!(f, "{s}")
    }
}

/// Expressions.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// Variable reference.
    Var(String),
    /// Array element read `a[e]`.
    Index(String, Box<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Conditional expression `c ? t : e`.
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Function call.
    Call(String, Vec<Expr>),
    /// Non-deterministic integer input (`nondet()`), used to model unknown
    /// inputs when searching for counterexamples.
    Nondet,
}

impl Expr {
    /// Convenience constructor for a variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Convenience constructor for a binary operation.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Convenience constructor for a unary operation.
    pub fn unary(op: UnOp, e: Expr) -> Expr {
        Expr::Unary(op, Box::new(e))
    }

    /// Visits this expression and all sub-expressions, outermost first.
    pub fn walk<'a>(&'a self, visit: &mut dyn FnMut(&'a Expr)) {
        visit(self);
        match self {
            Expr::Int(_) | Expr::Bool(_) | Expr::Var(_) | Expr::Nondet => {}
            Expr::Index(_, idx) => idx.walk(visit),
            Expr::Unary(_, e) => e.walk(visit),
            Expr::Binary(_, lhs, rhs) => {
                lhs.walk(visit);
                rhs.walk(visit);
            }
            Expr::Cond(c, t, e) => {
                c.walk(visit);
                t.walk(visit);
                e.walk(visit);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.walk(visit);
                }
            }
        }
    }

    /// Returns all variable names read by this expression (array names
    /// included), in first-occurrence order.
    pub fn read_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(&mut |e| match e {
            Expr::Var(name) | Expr::Index(name, _) if !out.contains(name) => {
                out.push(name.clone());
            }
            _ => {}
        });
        out
    }

    /// Returns all integer constants appearing in the expression.
    pub fn constants(&self) -> Vec<i64> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Int(v) = e {
                out.push(*v);
            }
        });
        out
    }

    /// Returns `true` if this expression calls any function.
    pub fn has_call(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(e, Expr::Call(..)) {
                found = true;
            }
        });
        found
    }

    /// Rewrites the expression bottom-up with `f`.
    pub fn map(&self, f: &mut dyn FnMut(Expr) -> Expr) -> Expr {
        let rebuilt = match self {
            Expr::Int(_) | Expr::Bool(_) | Expr::Var(_) | Expr::Nondet => self.clone(),
            Expr::Index(name, idx) => Expr::Index(name.clone(), Box::new(idx.map(f))),
            Expr::Unary(op, e) => Expr::Unary(*op, Box::new(e.map(f))),
            Expr::Binary(op, lhs, rhs) => {
                Expr::Binary(*op, Box::new(lhs.map(f)), Box::new(rhs.map(f)))
            }
            Expr::Cond(c, t, e) => {
                Expr::Cond(Box::new(c.map(f)), Box::new(t.map(f)), Box::new(e.map(f)))
            }
            Expr::Call(name, args) => {
                Expr::Call(name.clone(), args.iter().map(|a| a.map(f)).collect())
            }
        };
        f(rebuilt)
    }
}

/// Assignment targets.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum LValue {
    /// Scalar variable.
    Var(String),
    /// Array element `a[e]`.
    Index(String, Box<Expr>),
}

impl LValue {
    /// The name of the variable or array being written.
    pub fn name(&self) -> &str {
        match self {
            LValue::Var(n) | LValue::Index(n, _) => n,
        }
    }
}

/// Statements. Every statement records the source [`Line`] it came from.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Stmt {
    /// Local declaration with optional initializer.
    Decl {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: Type,
        /// Optional initializing expression.
        init: Option<Expr>,
        /// Source line.
        line: Line,
    },
    /// Assignment `target = value;`.
    Assign {
        /// Target of the assignment.
        target: LValue,
        /// Right-hand side.
        value: Expr,
        /// Source line.
        line: Line,
    },
    /// Conditional.
    If {
        /// Branch condition.
        cond: Expr,
        /// Then-branch body.
        then_branch: Vec<Stmt>,
        /// Else-branch body (possibly empty).
        else_branch: Vec<Stmt>,
        /// Source line of the `if`.
        line: Line,
    },
    /// While loop.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source line of the `while`.
        line: Line,
    },
    /// Assertion: the property the program must satisfy.
    Assert {
        /// Asserted condition.
        cond: Expr,
        /// Source line.
        line: Line,
    },
    /// Assumption: a constraint on inputs / environment.
    Assume {
        /// Assumed condition.
        cond: Expr,
        /// Source line.
        line: Line,
    },
    /// Return from the enclosing function.
    Return {
        /// Returned value (None for `void`-like returns).
        value: Option<Expr>,
        /// Source line.
        line: Line,
    },
    /// Expression statement (a bare call).
    ExprStmt {
        /// The evaluated expression.
        expr: Expr,
        /// Source line.
        line: Line,
    },
}

impl Stmt {
    /// The source line of this statement.
    pub fn line(&self) -> Line {
        match self {
            Stmt::Decl { line, .. }
            | Stmt::Assign { line, .. }
            | Stmt::If { line, .. }
            | Stmt::While { line, .. }
            | Stmt::Assert { line, .. }
            | Stmt::Assume { line, .. }
            | Stmt::Return { line, .. }
            | Stmt::ExprStmt { line, .. } => *line,
        }
    }

    /// Visits this statement and all nested statements, outermost first.
    pub fn walk<'a>(&'a self, visit: &mut dyn FnMut(&'a Stmt)) {
        visit(self);
        match self {
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                for s in then_branch {
                    s.walk(visit);
                }
                for s in else_branch {
                    s.walk(visit);
                }
            }
            Stmt::While { body, .. } => {
                for s in body {
                    s.walk(visit);
                }
            }
            _ => {}
        }
    }
}

/// A function definition.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameters (name, type), call-by-value.
    pub params: Vec<(String, Type)>,
    /// Return type; `None` models `void`.
    pub ret: Option<Type>,
    /// Function body.
    pub body: Vec<Stmt>,
    /// Source line of the definition.
    pub line: Line,
}

impl Function {
    /// Visits every statement of the body, outermost first.
    pub fn walk_stmts<'a>(&'a self, visit: &mut dyn FnMut(&'a Stmt)) {
        for s in &self.body {
            s.walk(visit);
        }
    }

    /// Returns the set of source lines occupied by statements of this
    /// function, sorted and deduplicated.
    pub fn statement_lines(&self) -> Vec<Line> {
        let mut lines = Vec::new();
        self.walk_stmts(&mut |s| lines.push(s.line()));
        lines.sort();
        lines.dedup();
        lines
    }
}

/// A global variable declaration.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Global {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Optional constant initializer (scalar globals only).
    pub init: Option<i64>,
    /// Source line of the declaration.
    pub line: Line,
}

/// A whole MinC program: globals plus functions. Execution starts at `main`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Program {
    /// Global variables.
    pub globals: Vec<Global>,
    /// Function definitions.
    pub functions: Vec<Function>,
}

impl Program {
    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Mutable lookup of a function by name.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// Looks up a global by name.
    pub fn global(&self, name: &str) -> Option<&Global> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// All statement lines of all functions, sorted and deduplicated. This is
    /// the denominator of the paper's "SizeReduc%" column (reported suspects
    /// over total statements).
    pub fn statement_lines(&self) -> Vec<Line> {
        let mut lines = Vec::new();
        for f in &self.functions {
            lines.extend(f.statement_lines());
        }
        lines.sort();
        lines.dedup();
        lines
    }

    /// Total number of statements (counting nested statements once each).
    pub fn num_statements(&self) -> usize {
        let mut count = 0;
        for f in &self.functions {
            f.walk_stmts(&mut |_| count += 1);
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_expr() -> Expr {
        // (x + 3) < a[i]
        Expr::binary(
            BinOp::Lt,
            Expr::binary(BinOp::Add, Expr::var("x"), Expr::Int(3)),
            Expr::Index("a".into(), Box::new(Expr::var("i"))),
        )
    }

    #[test]
    fn expr_read_vars_and_constants() {
        let e = sample_expr();
        assert_eq!(e.read_vars(), vec!["x".to_string(), "a".into(), "i".into()]);
        assert_eq!(e.constants(), vec![3]);
        assert!(!e.has_call());
        let call = Expr::Call("f".into(), vec![Expr::Int(1)]);
        assert!(call.has_call());
    }

    #[test]
    fn expr_map_rewrites_constants() {
        let e = sample_expr();
        let bumped = e.map(&mut |e| match e {
            Expr::Int(v) => Expr::Int(v + 1),
            other => other,
        });
        assert_eq!(bumped.constants(), vec![4]);
    }

    #[test]
    fn operator_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::And.is_logical());
        assert!(BinOp::Lt.mutation_neighbours().contains(&BinOp::Le));
        assert!(BinOp::Add.mutation_neighbours().contains(&BinOp::Sub));
        assert!(BinOp::Shl.mutation_neighbours().is_empty());
    }

    #[test]
    fn stmt_lines_and_walk() {
        let body = vec![
            Stmt::Assign {
                target: LValue::Var("x".into()),
                value: Expr::Int(1),
                line: Line(2),
            },
            Stmt::If {
                cond: Expr::var("x"),
                then_branch: vec![Stmt::Assert {
                    cond: Expr::Bool(true),
                    line: Line(4),
                }],
                else_branch: vec![],
                line: Line(3),
            },
        ];
        let f = Function {
            name: "main".into(),
            params: vec![],
            ret: Some(Type::Int),
            body,
            line: Line(1),
        };
        assert_eq!(f.statement_lines(), vec![Line(2), Line(3), Line(4)]);
        let program = Program {
            globals: vec![],
            functions: vec![f],
        };
        assert_eq!(program.num_statements(), 3);
        assert!(program.function("main").is_some());
        assert!(program.function("absent").is_none());
    }

    #[test]
    fn display_impls() {
        assert_eq!(Type::Array(3).to_string(), "int[3]");
        assert_eq!(BinOp::Le.to_string(), "<=");
        assert_eq!(UnOp::BitNot.to_string(), "~");
        assert_eq!(Line(7).to_string(), "line 7");
    }
}
