//! # minic — a small C-like imperative language frontend
//!
//! The BugAssist paper analyses ANSI-C programs through CBMC. This workspace
//! re-implements the pipeline from scratch, and `minic` plays the role of the
//! C frontend: a deliberately small imperative language (fixed-width
//! integers, Booleans, static arrays, functions, `if`/`while`,
//! `assert`/`assume`) that is nevertheless rich enough to express the paper's
//! benchmark programs — the TCAS collision-avoidance logic, the `strncat`
//! off-by-one demo, the integer square-root loop, and the larger Siemens-style
//! analogues.
//!
//! The crate provides:
//!
//! * the [`ast`] — every statement carries its source [`Line`], the unit of
//!   blame used by the localization algorithm;
//! * a [`lexer`] and recursive-descent parser ([`parse_program`],
//!   [`parse_expr`]);
//! * a scope/type checker ([`check_program`]);
//! * a pretty-printer ([`pretty_program`]) used to display mutated programs;
//! * [`mutate`] — the mutation mechanism shared by fault injection
//!   (building faulty benchmark versions) and repair candidate generation
//!   (off-by-one and operator replacement, Sec. 5.1 of the paper);
//! * [`delta`] — per-function line-insensitive structural fingerprints,
//!   line maps and the edit classifier that powers incremental
//!   re-localization in the service layer.
//!
//! # Examples
//!
//! ```
//! use minic::{parse_program, check_program};
//!
//! let program = parse_program(r#"
//!     int Array[3];
//!     int testme(int index) {
//!         if (index != 1) { index = 2; } else { index = index + 2; }
//!         int i = index;
//!         assert(i >= 0 && i < 3);
//!         return Array[i];
//!     }
//! "#)?;
//! assert!(check_program(&program).is_empty());
//! assert_eq!(program.function("testme").unwrap().params.len(), 1);
//! # Ok::<(), minic::ParseError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
pub mod ast_hash;
pub mod delta;
pub mod lexer;
pub mod mutate;
pub mod parser;
pub mod pretty;
pub mod typecheck;

pub use ast::{BinOp, Expr, Function, Global, LValue, Line, Program, Stmt, Type, UnOp};
pub use ast_hash::{ast_hash, hash_program, StableHasher};
pub use delta::{
    classify_edit, reachable_functions, segment_program, EditClass, FunctionSegment, LineMap,
    ProgramSegments,
};
pub use mutate::{
    apply_mutation, constant_sites, lines_with_constants, operator_sites, ConstantSite, Mutation,
    MutationError, OperatorSite,
};
pub use parser::{parse_expr, parse_program, ParseError};
pub use pretty::{pretty_expr, pretty_function, pretty_program, pretty_stmt};
pub use typecheck::{check_program, TypeError};
