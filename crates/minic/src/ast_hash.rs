//! Stable structural hashing of MinC ASTs.
//!
//! The localization service caches prepared [`crate::Program`] encodings
//! keyed by *content*: two requests carrying the same program must hit the
//! same cache slot even if the source texts differ in spacing or comments.
//! [`ast_hash`] provides that key — a 64-bit hash computed over the abstract
//! syntax, so anything the lexer throws away (whitespace within a line,
//! `//` and `/* */` comments, redundant parentheses) cannot affect it.
//!
//! Statement **line numbers are part of the hash**. They are not formatting
//! noise in MinC: a [`crate::ast::Line`] is the unit of blame the localizer
//! reports, so two programs whose statements sit on different lines produce
//! different localization reports and must not share a cache entry. The
//! hash is therefore insensitive to *intra-line* formatting and comments,
//! and sensitive to everything that can change an answer.
//!
//! The hash is deliberately independent of `std::hash::Hasher` (whose output
//! is not guaranteed stable across Rust releases or processes): it is a
//! hand-rolled 64-bit FNV-1a with a final avalanche mix, so the same AST
//! hashes identically on every platform, build and run — a requirement for
//! a cache shared by long-lived server processes.
//!
//! # Examples
//!
//! ```
//! use minic::{ast_hash, parse_program};
//!
//! let a = parse_program("int main(int x) { return x + 1; }").unwrap();
//! let b = parse_program("int  main( int x ) { return x+1; /* same */ }").unwrap();
//! let c = parse_program("int main(int x) { return x + 2; }").unwrap();
//! assert_eq!(ast_hash(&a), ast_hash(&b));
//! assert_ne!(ast_hash(&a), ast_hash(&c));
//! ```

use crate::ast::{BinOp, Expr, Function, Global, LValue, Program, Stmt, Type, UnOp};

/// A stable 64-bit streaming hasher (FNV-1a core, SplitMix64 finalizer).
///
/// Unlike `std::collections::hash_map::DefaultHasher`, the output is fixed
/// by this crate and never changes across processes, platforms or toolchain
/// upgrades, so it is safe to use as a persistent or wire-visible cache key.
#[derive(Clone, Debug)]
pub struct StableHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for StableHasher {
    fn default() -> StableHasher {
        StableHasher::new()
    }
}

impl StableHasher {
    /// Creates a hasher in the FNV-1a initial state.
    pub fn new() -> StableHasher {
        StableHasher { state: FNV_OFFSET }
    }

    /// Absorbs one byte.
    pub fn write_u8(&mut self, byte: u8) {
        self.state ^= u64::from(byte);
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.write_u8(byte);
        }
    }

    /// Absorbs an `i64` (two's-complement bit pattern).
    pub fn write_i64(&mut self, value: i64) {
        self.write_u64(value as u64);
    }

    /// Absorbs a `usize`, widened to 64 bits so 32- and 64-bit hosts agree.
    pub fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }

    /// Absorbs a string, length-prefixed so `("ab", "c")` and `("a", "bc")`
    /// differ.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        for byte in s.as_bytes() {
            self.write_u8(*byte);
        }
    }

    /// Finishes the hash with a SplitMix64-style avalanche so that small
    /// structural differences diffuse into all 64 bits (the service shards
    /// its cache by the low bits).
    pub fn finish(&self) -> u64 {
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Node tags keep differently-shaped constructs from colliding (`-x` vs
/// `!x`, a declaration vs an assignment, …). Every variant gets a distinct
/// byte before its payload is absorbed.
fn tag(h: &mut StableHasher, t: u8) {
    h.write_u8(t);
}

/// Whether statement/definition line numbers are absorbed into the hash.
///
/// [`ast_hash`] uses [`Lines::Keep`]: the `Line` is the unit of blame, so two
/// programs whose statements sit on different lines must hash differently.
/// The edit classifier ([`crate::delta`]) uses [`Lines::Ignore`] to compute
/// *structural fingerprints* that survive pure line shifts — the separate
/// line map carries the positions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Lines {
    /// Absorb line numbers (cache-key behaviour).
    Keep,
    /// Skip line numbers (structural-fingerprint behaviour).
    Ignore,
}

fn hash_line(h: &mut StableHasher, line: &crate::ast::Line, mode: Lines) {
    if mode == Lines::Keep {
        h.write_u64(u64::from(line.0));
    }
}

fn hash_type(h: &mut StableHasher, ty: &Type) {
    match ty {
        Type::Int => tag(h, 1),
        Type::Bool => tag(h, 2),
        Type::Array(n) => {
            tag(h, 3);
            h.write_usize(*n);
        }
    }
}

fn unop_tag(op: UnOp) -> u8 {
    match op {
        UnOp::Neg => 1,
        UnOp::Not => 2,
        UnOp::BitNot => 3,
    }
}

fn binop_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 1,
        BinOp::Sub => 2,
        BinOp::Mul => 3,
        BinOp::Div => 4,
        BinOp::Rem => 5,
        BinOp::Eq => 6,
        BinOp::Ne => 7,
        BinOp::Lt => 8,
        BinOp::Le => 9,
        BinOp::Gt => 10,
        BinOp::Ge => 11,
        BinOp::And => 12,
        BinOp::Or => 13,
        BinOp::BitAnd => 14,
        BinOp::BitOr => 15,
        BinOp::BitXor => 16,
        BinOp::Shl => 17,
        BinOp::Shr => 18,
    }
}

fn hash_expr(h: &mut StableHasher, expr: &Expr) {
    match expr {
        Expr::Int(v) => {
            tag(h, 10);
            h.write_i64(*v);
        }
        Expr::Bool(b) => {
            tag(h, 11);
            h.write_u8(u8::from(*b));
        }
        Expr::Var(name) => {
            tag(h, 12);
            h.write_str(name);
        }
        Expr::Index(name, idx) => {
            tag(h, 13);
            h.write_str(name);
            hash_expr(h, idx);
        }
        Expr::Unary(op, e) => {
            tag(h, 14);
            h.write_u8(unop_tag(*op));
            hash_expr(h, e);
        }
        Expr::Binary(op, lhs, rhs) => {
            tag(h, 15);
            h.write_u8(binop_tag(*op));
            hash_expr(h, lhs);
            hash_expr(h, rhs);
        }
        Expr::Cond(c, t, e) => {
            tag(h, 16);
            hash_expr(h, c);
            hash_expr(h, t);
            hash_expr(h, e);
        }
        Expr::Call(name, args) => {
            tag(h, 17);
            h.write_str(name);
            h.write_usize(args.len());
            for a in args {
                hash_expr(h, a);
            }
        }
        Expr::Nondet => tag(h, 18),
    }
}

fn hash_block(h: &mut StableHasher, stmts: &[Stmt], mode: Lines) {
    h.write_usize(stmts.len());
    for s in stmts {
        hash_stmt(h, s, mode);
    }
}

pub(crate) fn hash_stmt(h: &mut StableHasher, stmt: &Stmt, mode: Lines) {
    match stmt {
        Stmt::Decl {
            name,
            ty,
            init,
            line,
        } => {
            tag(h, 30);
            hash_line(h, line, mode);
            h.write_str(name);
            hash_type(h, ty);
            match init {
                None => tag(h, 0),
                Some(e) => {
                    tag(h, 1);
                    hash_expr(h, e);
                }
            }
        }
        Stmt::Assign {
            target,
            value,
            line,
        } => {
            tag(h, 31);
            hash_line(h, line, mode);
            match target {
                LValue::Var(name) => {
                    tag(h, 1);
                    h.write_str(name);
                }
                LValue::Index(name, idx) => {
                    tag(h, 2);
                    h.write_str(name);
                    hash_expr(h, idx);
                }
            }
            hash_expr(h, value);
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            line,
        } => {
            tag(h, 32);
            hash_line(h, line, mode);
            hash_expr(h, cond);
            hash_block(h, then_branch, mode);
            hash_block(h, else_branch, mode);
        }
        Stmt::While { cond, body, line } => {
            tag(h, 33);
            hash_line(h, line, mode);
            hash_expr(h, cond);
            hash_block(h, body, mode);
        }
        Stmt::Assert { cond, line } => {
            tag(h, 34);
            hash_line(h, line, mode);
            hash_expr(h, cond);
        }
        Stmt::Assume { cond, line } => {
            tag(h, 35);
            hash_line(h, line, mode);
            hash_expr(h, cond);
        }
        Stmt::Return { value, line } => {
            tag(h, 36);
            hash_line(h, line, mode);
            match value {
                None => tag(h, 0),
                Some(e) => {
                    tag(h, 1);
                    hash_expr(h, e);
                }
            }
        }
        Stmt::ExprStmt { expr, line } => {
            tag(h, 37);
            hash_line(h, line, mode);
            hash_expr(h, expr);
        }
    }
}

pub(crate) fn hash_global(h: &mut StableHasher, global: &Global, mode: Lines) {
    tag(h, 50);
    hash_line(h, &global.line, mode);
    h.write_str(&global.name);
    hash_type(h, &global.ty);
    match global.init {
        None => tag(h, 0),
        Some(v) => {
            tag(h, 1);
            h.write_i64(v);
        }
    }
}

pub(crate) fn hash_function(h: &mut StableHasher, function: &Function, mode: Lines) {
    tag(h, 60);
    hash_line(h, &function.line, mode);
    h.write_str(&function.name);
    h.write_usize(function.params.len());
    for (name, ty) in &function.params {
        h.write_str(name);
        hash_type(h, ty);
    }
    match &function.ret {
        None => tag(h, 0),
        Some(ty) => {
            tag(h, 1);
            hash_type(h, ty);
        }
    }
    hash_block(h, &function.body, mode);
}

/// Absorbs a whole program into an existing hasher — callers that need a
/// compound key (the service mixes in encoding width, unwinding depth and
/// blame granularity) start from one [`StableHasher`] and keep writing.
pub fn hash_program(h: &mut StableHasher, program: &Program) {
    h.write_usize(program.globals.len());
    for g in &program.globals {
        hash_global(h, g, Lines::Keep);
    }
    h.write_usize(program.functions.len());
    for f in &program.functions {
        hash_function(h, f, Lines::Keep);
    }
}

/// The stable structural hash of a program — see the [module docs](self)
/// for exactly what it is (in)sensitive to.
pub fn ast_hash(program: &Program) -> u64 {
    let mut h = StableHasher::new();
    hash_program(&mut h, program);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    #[test]
    fn whitespace_and_comments_do_not_change_the_hash() {
        // Same statements on the same lines; only intra-line spacing,
        // tabs and comments differ.
        let plain = parse_program(
            "int Array[3];\nint testme(int index) {\nif (index != 1) {\nindex = 2;\n} else {\nindex = index + 2;\n}\nint i = index;\nreturn Array[i];\n}",
        )
        .unwrap();
        let noisy = parse_program(
            "int   Array[ 3 ] ;  // global buffer\nint testme( int index ) {   /* entry */\nif (index!=1) { // branch\nindex=2;\n} else {\nindex = index+2; /* bug */\n}\nint\ti =\tindex;\nreturn Array[ i ];\n}",
        )
        .unwrap();
        assert_eq!(plain, noisy, "the ASTs themselves are equal");
        assert_eq!(ast_hash(&plain), ast_hash(&noisy));
    }

    #[test]
    fn structural_changes_change_the_hash() {
        let base = parse_program("int main(int x) {\nint y = x + 2;\nreturn y;\n}").unwrap();
        let constant = parse_program("int main(int x) {\nint y = x + 3;\nreturn y;\n}").unwrap();
        let operator = parse_program("int main(int x) {\nint y = x - 2;\nreturn y;\n}").unwrap();
        let renamed = parse_program("int main(int x) {\nint z = x + 2;\nreturn z;\n}").unwrap();
        let hashes = [
            ast_hash(&base),
            ast_hash(&constant),
            ast_hash(&operator),
            ast_hash(&renamed),
        ];
        for (i, a) in hashes.iter().enumerate() {
            for b in &hashes[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn line_numbers_are_part_of_the_hash() {
        // A leading blank line shifts every statement down one line. The
        // localizer would report different Line values for the two programs,
        // so they must not share a cache key.
        let tight = parse_program("int main(int x) {\nreturn x;\n}").unwrap();
        let shifted = parse_program("\nint main(int x) {\nreturn x;\n}").unwrap();
        assert_ne!(ast_hash(&tight), ast_hash(&shifted));
    }

    #[test]
    fn hash_is_stable_across_runs_and_reparses() {
        let source = "int main(int x) {\nassert(x >= 0);\nreturn x * 2;\n}";
        let once = ast_hash(&parse_program(source).unwrap());
        let twice = ast_hash(&parse_program(source).unwrap());
        assert_eq!(once, twice);
        // Pin the value: if this assertion ever fires, the hash function
        // changed and every persisted cache key is invalidated — bump
        // deliberately, never silently.
        assert_eq!(once, 0x5b90_e0d9_5e95_1662, "got {once:#x}");
    }

    #[test]
    fn hasher_primitives_are_order_and_boundary_sensitive() {
        let mut ab = StableHasher::new();
        ab.write_str("ab");
        ab.write_str("c");
        let mut a_bc = StableHasher::new();
        a_bc.write_str("a");
        a_bc.write_str("bc");
        assert_ne!(ab.finish(), a_bc.finish());

        let mut x = StableHasher::new();
        x.write_u64(1);
        x.write_u64(2);
        let mut y = StableHasher::new();
        y.write_u64(2);
        y.write_u64(1);
        assert_ne!(x.finish(), y.finish());
    }
}
