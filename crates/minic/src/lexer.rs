//! Lexer for MinC source text.

use crate::ast::Line;
use std::fmt;

/// Lexical token kinds.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// Integer literal.
    Int(i64),
    /// Identifier.
    Ident(String),
    /// Keyword (`int`, `bool`, `if`, ...).
    Keyword(Keyword),
    /// Punctuation or operator symbol.
    Symbol(Symbol),
    /// End of input.
    Eof,
}

/// Reserved words.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Keyword {
    /// `int`
    Int,
    /// `bool`
    Bool,
    /// `void`
    Void,
    /// `true`
    True,
    /// `false`
    False,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `return`
    Return,
    /// `assert`
    Assert,
    /// `assume`
    Assume,
    /// `nondet`
    Nondet,
}

/// Operator and punctuation symbols.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Symbol {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `?`
    Question,
    /// `:`
    Colon,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
}

/// A token with its source line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// The 1-based line it starts on.
    pub line: Line,
}

/// Error produced by the lexer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LexError {
    /// Line of the offending character.
    pub line: Line,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes MinC source text.
///
/// Both `//` line comments and `/* ... */` block comments are supported.
///
/// # Errors
///
/// Returns a [`LexError`] on unrecognized characters or malformed literals.
///
/// # Examples
///
/// ```
/// use minic::lexer::{tokenize, TokenKind};
/// let tokens = tokenize("x = 42; // set x").unwrap();
/// assert!(matches!(tokens[2].kind, TokenKind::Int(42)));
/// ```
pub fn tokenize(source: &str) -> Result<Vec<Token>, LexError> {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut pos = 0usize;
    let mut line = 1u32;

    while pos < chars.len() {
        let c = chars[pos];
        match c {
            '\n' => {
                line += 1;
                pos += 1;
            }
            c if c.is_whitespace() => pos += 1,
            '/' if chars.get(pos + 1) == Some(&'/') => {
                while pos < chars.len() && chars[pos] != '\n' {
                    pos += 1;
                }
            }
            '/' if chars.get(pos + 1) == Some(&'*') => {
                pos += 2;
                loop {
                    if pos + 1 >= chars.len() {
                        return Err(LexError {
                            line: Line(line),
                            message: "unterminated block comment".into(),
                        });
                    }
                    if chars[pos] == '\n' {
                        line += 1;
                    }
                    if chars[pos] == '*' && chars[pos + 1] == '/' {
                        pos += 2;
                        break;
                    }
                    pos += 1;
                }
            }
            c if c.is_ascii_digit() => {
                let start = pos;
                while pos < chars.len() && chars[pos].is_ascii_digit() {
                    pos += 1;
                }
                let text: String = chars[start..pos].iter().collect();
                let value = text.parse::<i64>().map_err(|_| LexError {
                    line: Line(line),
                    message: format!("integer literal out of range: {text}"),
                })?;
                tokens.push(Token {
                    kind: TokenKind::Int(value),
                    line: Line(line),
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = pos;
                while pos < chars.len() && (chars[pos].is_ascii_alphanumeric() || chars[pos] == '_')
                {
                    pos += 1;
                }
                let text: String = chars[start..pos].iter().collect();
                let kind = match text.as_str() {
                    "int" => TokenKind::Keyword(Keyword::Int),
                    "bool" => TokenKind::Keyword(Keyword::Bool),
                    "void" => TokenKind::Keyword(Keyword::Void),
                    "true" => TokenKind::Keyword(Keyword::True),
                    "false" => TokenKind::Keyword(Keyword::False),
                    "if" => TokenKind::Keyword(Keyword::If),
                    "else" => TokenKind::Keyword(Keyword::Else),
                    "while" => TokenKind::Keyword(Keyword::While),
                    "return" => TokenKind::Keyword(Keyword::Return),
                    "assert" => TokenKind::Keyword(Keyword::Assert),
                    "assume" => TokenKind::Keyword(Keyword::Assume),
                    "nondet" => TokenKind::Keyword(Keyword::Nondet),
                    _ => TokenKind::Ident(text),
                };
                tokens.push(Token {
                    kind,
                    line: Line(line),
                });
            }
            _ => {
                let two: String = chars[pos..chars.len().min(pos + 2)].iter().collect();
                let (symbol, width) = match two.as_str() {
                    "==" => (Symbol::EqEq, 2),
                    "!=" => (Symbol::NotEq, 2),
                    "<=" => (Symbol::Le, 2),
                    ">=" => (Symbol::Ge, 2),
                    "&&" => (Symbol::AndAnd, 2),
                    "||" => (Symbol::OrOr, 2),
                    "<<" => (Symbol::Shl, 2),
                    ">>" => (Symbol::Shr, 2),
                    _ => {
                        let sym = match c {
                            '(' => Symbol::LParen,
                            ')' => Symbol::RParen,
                            '{' => Symbol::LBrace,
                            '}' => Symbol::RBrace,
                            '[' => Symbol::LBracket,
                            ']' => Symbol::RBracket,
                            ';' => Symbol::Semi,
                            ',' => Symbol::Comma,
                            '?' => Symbol::Question,
                            ':' => Symbol::Colon,
                            '=' => Symbol::Assign,
                            '+' => Symbol::Plus,
                            '-' => Symbol::Minus,
                            '*' => Symbol::Star,
                            '/' => Symbol::Slash,
                            '%' => Symbol::Percent,
                            '<' => Symbol::Lt,
                            '>' => Symbol::Gt,
                            '!' => Symbol::Not,
                            '&' => Symbol::Amp,
                            '|' => Symbol::Pipe,
                            '^' => Symbol::Caret,
                            '~' => Symbol::Tilde,
                            other => {
                                return Err(LexError {
                                    line: Line(line),
                                    message: format!("unexpected character {other:?}"),
                                })
                            }
                        };
                        (sym, 1)
                    }
                };
                tokens.push(Token {
                    kind: TokenKind::Symbol(symbol),
                    line: Line(line),
                });
                pos += width;
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line: Line(line),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_identifiers_and_numbers() {
        let toks = tokenize("int x = 10; bool done = false;").unwrap();
        assert_eq!(toks[0].kind, TokenKind::Keyword(Keyword::Int));
        assert_eq!(toks[1].kind, TokenKind::Ident("x".into()));
        assert_eq!(toks[2].kind, TokenKind::Symbol(Symbol::Assign));
        assert_eq!(toks[3].kind, TokenKind::Int(10));
        assert_eq!(toks[5].kind, TokenKind::Keyword(Keyword::Bool));
        assert_eq!(toks[8].kind, TokenKind::Keyword(Keyword::False));
    }

    #[test]
    fn two_character_operators() {
        let toks = tokenize("a <= b && c != d >> 2").unwrap();
        let symbols: Vec<Symbol> = toks
            .iter()
            .filter_map(|t| match t.kind {
                TokenKind::Symbol(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(
            symbols,
            vec![Symbol::Le, Symbol::AndAnd, Symbol::NotEq, Symbol::Shr]
        );
    }

    #[test]
    fn line_numbers_are_tracked() {
        let toks = tokenize("a\nb\n\nc").unwrap();
        assert_eq!(toks[0].line, Line(1));
        assert_eq!(toks[1].line, Line(2));
        assert_eq!(toks[2].line, Line(4));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("x // trailing comment\n/* block\ncomment */ y").unwrap();
        let idents: Vec<&str> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(idents, vec!["x", "y"]);
        // `y` is on line 3 because the block comment spans two newlines.
        assert_eq!(toks[1].line, Line(3));
    }

    #[test]
    fn unterminated_comment_is_an_error() {
        let err = tokenize("/* never closed").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn unexpected_character_is_an_error() {
        let err = tokenize("x = $;").unwrap_err();
        assert!(err.message.contains("unexpected character"));
        assert_eq!(err.line, Line(1));
    }

    #[test]
    fn eof_token_terminates_stream() {
        let toks = tokenize("").unwrap();
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].kind, TokenKind::Eof);
    }
}
