//! Edit classification for incremental re-localization.
//!
//! The localization pipeline is built for an *edit loop*: a developer
//! localizes, changes a line or two, and re-runs. Almost every such edit
//! leaves most of the program structurally untouched — yet a whole-program
//! content hash ([`crate::ast_hash()`]) treats an inserted blank line as a
//! brand-new program, because statement line numbers (the unit of blame)
//! feed the hash. This module supplies the machinery that lets downstream
//! layers tell *how much* actually changed:
//!
//! * [`segment_program`] splits a program into per-function **segments**,
//!   each carrying a *line-insensitive* structural fingerprint, per
//!   top-level-statement **region** fingerprints, and a separate **line
//!   trace** (the pre-order statement line numbers). Fingerprint = what the
//!   code does; line trace = where it sits. Keeping them apart is the whole
//!   trick: a pure line shift changes only the trace.
//! * [`classify_edit`] compares two segmentations and classifies the edit:
//!   - [`EditClass::Identical`] — same structure, same lines (the source
//!     texts may still differ in whitespace or comments);
//!   - [`EditClass::LineShift`] — same structure, statement lines remapped
//!     by a consistent, strictly monotonic [`LineMap`] (blank lines or
//!     comments inserted/removed);
//!   - [`EditClass::LocalToFunction`] — exactly one function's body or
//!     signature changed; everything else is structurally intact (its lines
//!     may have shifted, captured by the accompanying [`LineMap`]);
//!   - [`EditClass::Global`] — anything bigger (globals changed, functions
//!     added/removed/reordered, several functions edited, or a line mapping
//!     that is not order-preserving).
//! * [`reachable_functions`] computes the call-graph closure from an entry
//!   point, so a consumer can tell whether a `LocalToFunction` edit can
//!   affect the symbolic encoding at all.
//!
//! The classification is deliberately **conservative**: whenever the line
//! mapping is ambiguous (a statement line maps two ways, or the map is not
//! strictly monotonic — statements merged onto one line, or reordered), the
//! edit is demoted to [`EditClass::Global`] and the consumer falls back to a
//! full rebuild. A wrong "reuse" answer would silently corrupt blame lines;
//! a wrong "rebuild" answer only costs time.

use crate::ast::{Expr, Function, Line, Program, Stmt};
use crate::ast_hash::{hash_function, hash_global, hash_stmt, Lines, StableHasher};
use std::collections::{BTreeMap, BTreeSet};

/// One per-function segment: structural identity separated from line
/// placement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FunctionSegment {
    /// Function name.
    pub name: String,
    /// Line-insensitive structural fingerprint of the whole function
    /// (signature + body, every line number skipped).
    pub fingerprint: u64,
    /// Line-insensitive fingerprint of each *top-level* body statement — the
    /// statement regions. Lets a consumer see how much of a changed function
    /// actually moved.
    pub regions: Vec<u64>,
    /// Pre-order trace of every statement's line, nested statements
    /// included. Parallel traces of two structurally equal functions pair up
    /// position by position — that pairing *is* the line map.
    pub lines: Vec<Line>,
}

/// A whole program, segmented for diffing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgramSegments {
    /// Line-insensitive fingerprint over all globals (names, types,
    /// initializers — not their lines, which never carry blame).
    pub globals_fingerprint: u64,
    /// One segment per function, in definition order.
    pub functions: Vec<FunctionSegment>,
}

/// An order-preserving map from old statement lines to new statement lines.
///
/// Built positionally from the line traces of structurally equal segments,
/// then validated: every old line must map to exactly one new line
/// (consistency) and the map must be strictly increasing (monotonicity), so
/// that relabeling preserves both the per-line clause grouping and the
/// sorted order downstream consumers rely on.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LineMap {
    map: BTreeMap<u32, u32>,
}

impl LineMap {
    /// The new line for an old line; unmapped lines pass through unchanged
    /// (they belong to parts of the program outside the mapped segments).
    pub fn remap(&self, line: Line) -> Line {
        Line(self.map.get(&line.0).copied().unwrap_or(line.0))
    }

    /// `true` if every mapped line maps to itself.
    pub fn is_identity(&self) -> bool {
        self.map.iter().all(|(old, new)| old == new)
    }

    /// Number of mapped source lines.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if no lines are mapped.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Inserts one pairing; `false` on conflict (the old line is already
    /// mapped to a different new line).
    fn insert(&mut self, old: Line, new: Line) -> bool {
        match self.map.insert(old.0, new.0) {
            None => true,
            Some(previous) => previous == new.0,
        }
    }

    /// `true` if the mapping is strictly increasing on both sides.
    fn is_strictly_monotonic(&self) -> bool {
        let mut last_new: Option<u32> = None;
        for &new in self.map.values() {
            if let Some(prev) = last_new {
                if new <= prev {
                    return false;
                }
            }
            last_new = Some(new);
        }
        true
    }
}

/// How an edit relates the old program to the new one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EditClass {
    /// Structure and statement lines are identical; only formatting or
    /// comments can differ between the source texts.
    Identical,
    /// Structure identical, statement lines shifted by the map.
    LineShift(LineMap),
    /// Exactly one function changed structurally; all other functions and
    /// every global are intact (their lines possibly shifted, per the map —
    /// the changed function's own lines are *not* in the map).
    LocalToFunction {
        /// Name of the (single) structurally changed function.
        function: String,
        /// Number of top-level statement regions of that function whose
        /// fingerprints differ (0 when the region lists have different
        /// lengths or only the signature changed).
        changed_regions: usize,
        /// Line map covering the *unchanged* functions.
        line_map: LineMap,
    },
    /// Anything bigger; consumers must rebuild from scratch.
    Global,
}

impl EditClass {
    /// Short wire/telemetry label for the class.
    pub fn label(&self) -> &'static str {
        match self {
            EditClass::Identical => "identical",
            EditClass::LineShift(_) => "line_shift",
            EditClass::LocalToFunction { .. } => "local_to_function",
            EditClass::Global => "global",
        }
    }
}

fn function_fingerprint(function: &Function) -> u64 {
    let mut h = StableHasher::new();
    hash_function(&mut h, function, Lines::Ignore);
    h.finish()
}

fn region_fingerprints(function: &Function) -> Vec<u64> {
    function
        .body
        .iter()
        .map(|stmt| {
            let mut h = StableHasher::new();
            hash_stmt(&mut h, stmt, Lines::Ignore);
            h.finish()
        })
        .collect()
}

fn line_trace(function: &Function) -> Vec<Line> {
    let mut lines = Vec::new();
    function.walk_stmts(&mut |s| lines.push(s.line()));
    lines
}

/// Splits a program into diffable per-function segments plus a globals
/// fingerprint. Cheap (a hashing pass over the AST) compared to anything
/// downstream, so callers may recompute it freely or cache it alongside
/// prepared artifacts.
pub fn segment_program(program: &Program) -> ProgramSegments {
    let globals_fingerprint = {
        let mut h = StableHasher::new();
        h.write_usize(program.globals.len());
        for g in &program.globals {
            hash_global(&mut h, g, Lines::Ignore);
        }
        h.finish()
    };
    ProgramSegments {
        globals_fingerprint,
        functions: program
            .functions
            .iter()
            .map(|f| FunctionSegment {
                name: f.name.clone(),
                fingerprint: function_fingerprint(f),
                regions: region_fingerprints(f),
                lines: line_trace(f),
            })
            .collect(),
    }
}

/// Extends `map` with the positional pairing of two equal-length line
/// traces. Returns `false` on an inconsistent pairing.
fn pair_lines(map: &mut LineMap, old: &[Line], new: &[Line]) -> bool {
    debug_assert_eq!(old.len(), new.len(), "structurally equal segments");
    old.iter()
        .zip(new)
        .all(|(&old_line, &new_line)| map.insert(old_line, new_line))
}

/// Classifies the edit that turned `old` into `new`. See the
/// [module docs](self) for the exact meaning of each class and the
/// conservative demotion rules.
pub fn classify_edit(old: &ProgramSegments, new: &ProgramSegments) -> EditClass {
    if old.globals_fingerprint != new.globals_fingerprint
        || old.functions.len() != new.functions.len()
    {
        return EditClass::Global;
    }
    // Functions must pair up positionally by name: a rename or reorder is a
    // global change (call sites elsewhere may resolve differently).
    if old
        .functions
        .iter()
        .zip(&new.functions)
        .any(|(a, b)| a.name != b.name)
    {
        return EditClass::Global;
    }
    let changed: Vec<usize> = (0..old.functions.len())
        .filter(|&i| old.functions[i].fingerprint != new.functions[i].fingerprint)
        .collect();
    match changed.as_slice() {
        [] => {
            let mut map = LineMap::default();
            for (a, b) in old.functions.iter().zip(&new.functions) {
                if !pair_lines(&mut map, &a.lines, &b.lines) {
                    return EditClass::Global;
                }
            }
            if !map.is_strictly_monotonic() {
                return EditClass::Global;
            }
            if map.is_identity() {
                EditClass::Identical
            } else {
                EditClass::LineShift(map)
            }
        }
        [index] => {
            let mut map = LineMap::default();
            for (i, (a, b)) in old.functions.iter().zip(&new.functions).enumerate() {
                if i == *index {
                    continue;
                }
                if !pair_lines(&mut map, &a.lines, &b.lines) {
                    return EditClass::Global;
                }
            }
            if !map.is_strictly_monotonic() {
                return EditClass::Global;
            }
            let (old_f, new_f) = (&old.functions[*index], &new.functions[*index]);
            let changed_regions = if old_f.regions.len() == new_f.regions.len() {
                old_f
                    .regions
                    .iter()
                    .zip(&new_f.regions)
                    .filter(|(a, b)| a != b)
                    .count()
            } else {
                0
            };
            EditClass::LocalToFunction {
                function: new_f.name.clone(),
                changed_regions,
                line_map: map,
            }
        }
        _ => EditClass::Global,
    }
}

fn called_names(stmt: &Stmt, out: &mut BTreeSet<String>) {
    let mut visit_expr = |e: &Expr| {
        e.walk(&mut |sub| {
            if let Expr::Call(name, _) = sub {
                out.insert(name.clone());
            }
        });
    };
    match stmt {
        Stmt::Decl { init: Some(e), .. }
        | Stmt::Assert { cond: e, .. }
        | Stmt::Assume { cond: e, .. }
        | Stmt::Return { value: Some(e), .. }
        | Stmt::ExprStmt { expr: e, .. } => visit_expr(e),
        Stmt::Decl { init: None, .. } | Stmt::Return { value: None, .. } => {}
        Stmt::Assign { target, value, .. } => {
            if let crate::ast::LValue::Index(_, idx) = target {
                visit_expr(idx);
            }
            visit_expr(value);
        }
        // Nested statements are covered by the caller's walk; only the
        // statement's own expressions are visited here.
        Stmt::If { cond, .. } | Stmt::While { cond, .. } => visit_expr(cond),
    }
}

/// The set of function names transitively reachable from `entry` through
/// call expressions (the entry itself included, when it exists). Functions
/// outside this set contribute nothing to a symbolic encoding rooted at
/// `entry`, so edits confined to them can never change a localization
/// answer.
pub fn reachable_functions(program: &Program, entry: &str) -> BTreeSet<String> {
    let mut reachable = BTreeSet::new();
    let mut queue: Vec<String> = Vec::new();
    if program.function(entry).is_some() {
        reachable.insert(entry.to_string());
        queue.push(entry.to_string());
    }
    while let Some(name) = queue.pop() {
        let Some(function) = program.function(&name) else {
            continue;
        };
        let mut called = BTreeSet::new();
        function.walk_stmts(&mut |s| called_names(s, &mut called));
        for callee in called {
            if program.function(&callee).is_some() && reachable.insert(callee.clone()) {
                queue.push(callee);
            }
        }
    }
    reachable
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    fn segments(src: &str) -> ProgramSegments {
        segment_program(&parse_program(src).expect("parses"))
    }

    const BASE: &str = "int helper(int a) {\nreturn a * 2;\n}\nint main(int x) {\nint y = helper(x);\nreturn y + 1;\n}";

    #[test]
    fn identical_structure_and_lines() {
        // Intra-line formatting and comments do not reach the AST.
        let noisy = "int helper( int a ) {\nreturn a*2; // double\n}\nint main(int x) {   /* entry */\nint y = helper(x);\nreturn y + 1;\n}";
        assert_eq!(
            classify_edit(&segments(BASE), &segments(noisy)),
            EditClass::Identical
        );
    }

    #[test]
    fn blank_line_insertion_is_a_line_shift() {
        let shifted = "int helper(int a) {\nreturn a * 2;\n}\n\nint main(int x) {\n\nint y = helper(x);\nreturn y + 1;\n}";
        let class = classify_edit(&segments(BASE), &segments(shifted));
        let EditClass::LineShift(map) = class else {
            panic!("expected LineShift, got {class:?}");
        };
        // helper's body did not move; main's statements moved down.
        assert_eq!(map.remap(Line(2)), Line(2));
        assert_eq!(map.remap(Line(5)), Line(7));
        assert_eq!(map.remap(Line(6)), Line(8));
        assert!(!map.is_identity());
        // Unmapped lines (no statement there) pass through.
        assert_eq!(map.remap(Line(99)), Line(99));
    }

    #[test]
    fn single_function_edit_is_local() {
        // helper's constant changes; main only shifts (a comment line above it).
        let edited = "int helper(int a) {\nreturn a * 3;\n}\n\nint main(int x) {\nint y = helper(x);\nreturn y + 1;\n}";
        let class = classify_edit(&segments(BASE), &segments(edited));
        let EditClass::LocalToFunction {
            function,
            changed_regions,
            line_map,
        } = class
        else {
            panic!("expected LocalToFunction, got {class:?}");
        };
        assert_eq!(function, "helper");
        assert_eq!(changed_regions, 1);
        // main's statements shifted down by one; helper's lines are unmapped.
        assert_eq!(line_map.remap(Line(5)), Line(6));
        assert_eq!(line_map.remap(Line(6)), Line(7));
    }

    #[test]
    fn bigger_edits_are_global() {
        // Globals changed.
        let with_global = format!("int G = 1;\n{BASE}");
        assert_eq!(
            classify_edit(&segments(BASE), &segments(&with_global)),
            EditClass::Global
        );
        // Function added.
        let extra = format!("{BASE}\nint spare(int z) {{\nreturn z;\n}}");
        assert_eq!(
            classify_edit(&segments(BASE), &segments(&extra)),
            EditClass::Global
        );
        // Two functions edited.
        let both = "int helper(int a) {\nreturn a * 3;\n}\nint main(int x) {\nint y = helper(x);\nreturn y + 2;\n}";
        assert_eq!(
            classify_edit(&segments(BASE), &segments(both)),
            EditClass::Global
        );
        // Functions reordered (same structure set, different positions).
        let reordered = "int main(int x) {\nint y = helper(x);\nreturn y + 1;\n}\nint helper(int a) {\nreturn a * 2;\n}";
        assert_eq!(
            classify_edit(&segments(BASE), &segments(reordered)),
            EditClass::Global
        );
    }

    #[test]
    fn merged_lines_demote_to_global() {
        // Two statements that sat on separate lines now share one line: the
        // old lines would map non-injectively, which breaks the per-line
        // clause grouping — must fall back.
        let merged = "int helper(int a) {\nreturn a * 2;\n}\nint main(int x) {\nint y = helper(x); return y + 1;\n}";
        assert_eq!(
            classify_edit(&segments(BASE), &segments(merged)),
            EditClass::Global
        );
    }

    #[test]
    fn split_statement_lines_demote_to_global() {
        // One source line held two statements; the new text splits them.
        let joined = "int main(int x) {\nint y = x + 1; int z = y;\nreturn z;\n}";
        let split = "int main(int x) {\nint y = x + 1;\nint z = y;\nreturn z;\n}";
        assert_eq!(
            classify_edit(&segments(joined), &segments(split)),
            EditClass::Global
        );
    }

    #[test]
    fn signature_change_is_still_local_to_the_function() {
        let resigned = "int helper(int a, int b) {\nreturn a * 2;\n}\nint main(int x) {\nint y = helper(x);\nreturn y + 1;\n}";
        let class = classify_edit(&segments(BASE), &segments(resigned));
        assert!(
            matches!(&class, EditClass::LocalToFunction { function, .. } if function == "helper"),
            "{class:?}"
        );
    }

    #[test]
    fn reachability_follows_calls_transitively() {
        let src = "int leaf(int a) {\nreturn a;\n}\nint mid(int a) {\nreturn leaf(a) + 1;\n}\nint dead(int a) {\nreturn mid(a);\n}\nint main(int x) {\nwhile (x > 0) {\nx = mid(x) - 2;\n}\nreturn x;\n}";
        let program = parse_program(src).unwrap();
        let reachable = reachable_functions(&program, "main");
        assert!(reachable.contains("main"));
        assert!(reachable.contains("mid"));
        assert!(reachable.contains("leaf"));
        assert!(!reachable.contains("dead"));
        // Unknown entry: empty set.
        assert!(reachable_functions(&program, "absent").is_empty());
    }

    #[test]
    fn segments_separate_structure_from_lines() {
        let a = segments("int main(int x) {\nreturn x + 1;\n}");
        let b = segments("\n\nint main(int x) {\nreturn x + 1;\n}");
        let c = segments("int main(int x) {\nreturn x + 2;\n}");
        assert_eq!(a.functions[0].fingerprint, b.functions[0].fingerprint);
        assert_ne!(a.functions[0].lines, b.functions[0].lines);
        assert_ne!(a.functions[0].fingerprint, c.functions[0].fingerprint);
        assert_eq!(a.functions[0].regions.len(), 1);
    }
}
