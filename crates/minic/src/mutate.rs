//! Program mutation: the shared mechanism behind fault injection (building
//! the faulty benchmark versions of Sec. 6) and repair candidate generation
//! (the off-by-one and operator-replacement search of Sec. 5.1).
//!
//! A [`Mutation`] names a statement by source [`Line`] and describes a small
//! syntactic change; [`apply_mutation`] returns a rewritten copy of the
//! program. [`constant_sites`] and [`operator_sites`] enumerate the places a
//! mutation could target, mirroring the paper's "mark the lines which have
//! constants in them" pre-processing step.

use crate::ast::*;
use std::fmt;

/// A small syntactic change to one statement of a program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Mutation {
    /// Add `delta` to the `occurrence`-th integer constant on the line.
    BumpConstant {
        /// Target line.
        line: Line,
        /// 0-based index of the constant within the line (walk order).
        occurrence: usize,
        /// Amount to add (e.g. `+1` / `-1` for off-by-one repair).
        delta: i64,
    },
    /// Replace the `occurrence`-th integer constant on the line with `value`.
    SetConstant {
        /// Target line.
        line: Line,
        /// 0-based index of the constant within the line (walk order).
        occurrence: usize,
        /// New constant value.
        value: i64,
    },
    /// Replace the `occurrence`-th binary operator on the line with `new_op`.
    ReplaceOperator {
        /// Target line.
        line: Line,
        /// 0-based index of the operator within the line (walk order).
        occurrence: usize,
        /// Replacement operator.
        new_op: BinOp,
    },
    /// Logically negate the condition of the `if`/`while`/`assert`/`assume`
    /// statement on the line.
    NegateCondition {
        /// Target line.
        line: Line,
    },
    /// Replace the right-hand side of the assignment (or the initializer of
    /// the declaration) on the line with a new expression.
    ReplaceAssignValue {
        /// Target line.
        line: Line,
        /// New right-hand side.
        value: Expr,
    },
}

impl Mutation {
    /// The line this mutation targets.
    pub fn line(&self) -> Line {
        match self {
            Mutation::BumpConstant { line, .. }
            | Mutation::SetConstant { line, .. }
            | Mutation::ReplaceOperator { line, .. }
            | Mutation::NegateCondition { line }
            | Mutation::ReplaceAssignValue { line, .. } => *line,
        }
    }
}

impl fmt::Display for Mutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mutation::BumpConstant {
                line,
                occurrence,
                delta,
            } => {
                write!(f, "bump constant #{occurrence} at {line} by {delta:+}")
            }
            Mutation::SetConstant {
                line,
                occurrence,
                value,
            } => {
                write!(f, "set constant #{occurrence} at {line} to {value}")
            }
            Mutation::ReplaceOperator {
                line,
                occurrence,
                new_op,
            } => {
                write!(f, "replace operator #{occurrence} at {line} with {new_op}")
            }
            Mutation::NegateCondition { line } => write!(f, "negate condition at {line}"),
            Mutation::ReplaceAssignValue { line, .. } => {
                write!(f, "replace assignment value at {line}")
            }
        }
    }
}

/// Error applying a [`Mutation`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MutationError {
    /// The mutation that failed.
    pub mutation: Mutation,
    /// Why it could not be applied.
    pub message: String,
}

impl fmt::Display for MutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot apply mutation ({}): {}",
            self.mutation, self.message
        )
    }
}

impl std::error::Error for MutationError {}

/// A place in the program where an integer constant occurs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ConstantSite {
    /// Line of the enclosing statement.
    pub line: Line,
    /// 0-based index of the constant within the line.
    pub occurrence: usize,
    /// Current value of the constant.
    pub value: i64,
}

/// A place in the program where a binary operator occurs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OperatorSite {
    /// Line of the enclosing statement.
    pub line: Line,
    /// 0-based index of the operator within the line.
    pub occurrence: usize,
    /// Current operator.
    pub op: BinOp,
}

/// Enumerates every integer-constant occurrence in the program, in program
/// order. This is the paper's "lines which have constants in them" marking,
/// refined to individual occurrences.
pub fn constant_sites(program: &Program) -> Vec<ConstantSite> {
    let mut sites = Vec::new();
    for function in &program.functions {
        function.walk_stmts(&mut |stmt| {
            let mut occurrence = 0usize;
            for_each_expr(stmt, &mut |e| {
                e.walk(&mut |sub| {
                    if let Expr::Int(v) = sub {
                        sites.push(ConstantSite {
                            line: stmt.line(),
                            occurrence,
                            value: *v,
                        });
                        occurrence += 1;
                    }
                });
            });
        });
    }
    sites
}

/// Enumerates every binary-operator occurrence in the program, in program
/// order.
pub fn operator_sites(program: &Program) -> Vec<OperatorSite> {
    let mut sites = Vec::new();
    for function in &program.functions {
        function.walk_stmts(&mut |stmt| {
            let mut occurrence = 0usize;
            for_each_expr(stmt, &mut |e| {
                e.walk(&mut |sub| {
                    if let Expr::Binary(op, _, _) = sub {
                        sites.push(OperatorSite {
                            line: stmt.line(),
                            occurrence,
                            op: *op,
                        });
                        occurrence += 1;
                    }
                });
            });
        });
    }
    sites
}

/// Lines of the program that contain at least one integer constant (the
/// pre-marking used by the off-by-one repair of Algorithm 2).
pub fn lines_with_constants(program: &Program) -> Vec<Line> {
    let mut lines: Vec<Line> = constant_sites(program).iter().map(|s| s.line).collect();
    lines.sort();
    lines.dedup();
    lines
}

/// Applies a mutation, returning the rewritten program.
///
/// # Errors
///
/// Returns a [`MutationError`] if the target line has no statement, or the
/// requested constant/operator occurrence does not exist, or the statement
/// kind does not match the mutation (e.g. negating the condition of an
/// assignment).
pub fn apply_mutation(program: &Program, mutation: &Mutation) -> Result<Program, MutationError> {
    let mut applied = false;
    let mut result = program.clone();
    for function in &mut result.functions {
        function.body = rewrite_block(&function.body, mutation, &mut applied);
    }
    if applied {
        Ok(result)
    } else {
        Err(MutationError {
            mutation: mutation.clone(),
            message: "no matching statement / occurrence found".into(),
        })
    }
}

fn rewrite_block(block: &[Stmt], mutation: &Mutation, applied: &mut bool) -> Vec<Stmt> {
    block
        .iter()
        .map(|stmt| rewrite_stmt(stmt, mutation, applied))
        .collect()
}

fn rewrite_stmt(stmt: &Stmt, mutation: &Mutation, applied: &mut bool) -> Stmt {
    // Recurse into nested blocks first so that nested statements on the
    // target line are reachable.
    let stmt = match stmt {
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            line,
        } => Stmt::If {
            cond: cond.clone(),
            then_branch: rewrite_block(then_branch, mutation, applied),
            else_branch: rewrite_block(else_branch, mutation, applied),
            line: *line,
        },
        Stmt::While { cond, body, line } => Stmt::While {
            cond: cond.clone(),
            body: rewrite_block(body, mutation, applied),
            line: *line,
        },
        other => other.clone(),
    };
    if stmt.line() != mutation.line() || *applied {
        return stmt;
    }
    match mutation {
        Mutation::BumpConstant {
            occurrence, delta, ..
        } => rewrite_nth_constant(stmt, *occurrence, |v| v + delta, applied),
        Mutation::SetConstant {
            occurrence, value, ..
        } => rewrite_nth_constant(stmt, *occurrence, |_| *value, applied),
        Mutation::ReplaceOperator {
            occurrence, new_op, ..
        } => rewrite_nth_operator(stmt, *occurrence, *new_op, applied),
        Mutation::NegateCondition { .. } => match stmt {
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                line,
            } => {
                *applied = true;
                Stmt::If {
                    cond: Expr::unary(UnOp::Not, cond),
                    then_branch,
                    else_branch,
                    line,
                }
            }
            Stmt::While { cond, body, line } => {
                *applied = true;
                Stmt::While {
                    cond: Expr::unary(UnOp::Not, cond),
                    body,
                    line,
                }
            }
            Stmt::Assert { cond, line } => {
                *applied = true;
                Stmt::Assert {
                    cond: Expr::unary(UnOp::Not, cond),
                    line,
                }
            }
            Stmt::Assume { cond, line } => {
                *applied = true;
                Stmt::Assume {
                    cond: Expr::unary(UnOp::Not, cond),
                    line,
                }
            }
            other => other,
        },
        Mutation::ReplaceAssignValue { value, .. } => match stmt {
            Stmt::Assign { target, line, .. } => {
                *applied = true;
                Stmt::Assign {
                    target,
                    value: value.clone(),
                    line,
                }
            }
            Stmt::Decl {
                name,
                ty,
                init: Some(_),
                line,
            } => {
                *applied = true;
                Stmt::Decl {
                    name,
                    ty,
                    init: Some(value.clone()),
                    line,
                }
            }
            other => other,
        },
    }
}

fn rewrite_nth_constant(
    stmt: Stmt,
    occurrence: usize,
    new_value: impl Fn(i64) -> i64,
    applied: &mut bool,
) -> Stmt {
    let mut counter = 0usize;
    map_stmt_exprs(stmt, &mut |e| {
        e.map(&mut |sub| match sub {
            Expr::Int(v) => {
                let idx = counter;
                counter += 1;
                if idx == occurrence {
                    *applied = true;
                    Expr::Int(new_value(v))
                } else {
                    Expr::Int(v)
                }
            }
            other => other,
        })
    })
}

fn rewrite_nth_operator(stmt: Stmt, occurrence: usize, new_op: BinOp, applied: &mut bool) -> Stmt {
    let mut counter = 0usize;
    map_stmt_exprs(stmt, &mut |e| {
        // `Expr::map` rebuilds bottom-up; count in a separate pre-order pass so
        // occurrence indices match `operator_sites`.
        let mut order = Vec::new();
        e.walk(&mut |sub| {
            if matches!(sub, Expr::Binary(..)) {
                order.push(sub.clone());
            }
        });
        let base = counter;
        counter += order.len();
        let target_in_expr = occurrence.checked_sub(base).filter(|&i| i < order.len());
        let Some(target_idx) = target_in_expr else {
            return e.clone();
        };
        let target_node = order[target_idx].clone();
        let mut replaced = false;
        e.map(&mut |sub| {
            if !replaced && sub == target_node {
                if let Expr::Binary(_, lhs, rhs) = sub {
                    replaced = true;
                    *applied = true;
                    return Expr::Binary(new_op, lhs, rhs);
                }
            }
            sub
        })
    })
}

/// Calls `f` on every top-level expression of the statement itself (not on
/// nested statements, which the callers traverse via [`Stmt::walk`]).
fn for_each_expr<'a>(stmt: &'a Stmt, f: &mut dyn FnMut(&'a Expr)) {
    match stmt {
        Stmt::Decl { init, .. } => {
            if let Some(e) = init {
                f(e);
            }
        }
        Stmt::Assign { target, value, .. } => {
            if let LValue::Index(_, idx) = target {
                f(idx);
            }
            f(value);
        }
        Stmt::If { cond, .. } | Stmt::While { cond, .. } => f(cond),
        Stmt::Assert { cond, .. } | Stmt::Assume { cond, .. } => f(cond),
        Stmt::Return { value, .. } => {
            if let Some(e) = value {
                f(e);
            }
        }
        Stmt::ExprStmt { expr, .. } => f(expr),
    }
}

/// Applies `f` to every top-level expression of the statement (condition,
/// right-hand side, index, arguments), rebuilding the statement.
fn map_stmt_exprs(stmt: Stmt, f: &mut dyn FnMut(&Expr) -> Expr) -> Stmt {
    match stmt {
        Stmt::Decl {
            name,
            ty,
            init,
            line,
        } => Stmt::Decl {
            name,
            ty,
            init: init.map(|e| f(&e)),
            line,
        },
        Stmt::Assign {
            target,
            value,
            line,
        } => {
            let target = match target {
                LValue::Var(n) => LValue::Var(n),
                LValue::Index(n, idx) => LValue::Index(n, Box::new(f(&idx))),
            };
            Stmt::Assign {
                target,
                value: f(&value),
                line,
            }
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            line,
        } => Stmt::If {
            cond: f(&cond),
            then_branch,
            else_branch,
            line,
        },
        Stmt::While { cond, body, line } => Stmt::While {
            cond: f(&cond),
            body,
            line,
        },
        Stmt::Assert { cond, line } => Stmt::Assert {
            cond: f(&cond),
            line,
        },
        Stmt::Assume { cond, line } => Stmt::Assume {
            cond: f(&cond),
            line,
        },
        Stmt::Return { value, line } => Stmt::Return {
            value: value.map(|e| f(&e)),
            line,
        },
        Stmt::ExprStmt { expr, line } => Stmt::ExprStmt {
            expr: f(&expr),
            line,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::pretty::pretty_program;

    fn testme() -> Program {
        parse_program(
            "int Array[3];\nint testme(int index) {\nif (index != 1) {\nindex = 2;\n} else {\nindex = index + 2;\n}\nint i = index;\nassert(i >= 0 && i < 3);\nreturn Array[i];\n}",
        )
        .unwrap()
    }

    #[test]
    fn constant_and_operator_sites_are_enumerated() {
        let program = testme();
        let consts = constant_sites(&program);
        // Constants: 1 (line 3), 2 (line 4), 2 (line 6), 0 and 3 (line 9).
        assert_eq!(consts.len(), 5);
        assert_eq!(consts[0].value, 1);
        assert_eq!(consts[1].value, 2);
        let ops = operator_sites(&program);
        assert!(ops.iter().any(|o| o.op == BinOp::Ne));
        assert!(ops.iter().any(|o| o.op == BinOp::Add));
        let lines = lines_with_constants(&program);
        assert!(lines.contains(&Line(4)));
        assert!(lines.contains(&Line(9)));
    }

    #[test]
    fn bump_constant_changes_only_the_target() {
        let program = testme();
        // Line 6 is `index = index + 2;` — the paper's Potential Bug 1.
        let mutated = apply_mutation(
            &program,
            &Mutation::BumpConstant {
                line: Line(6),
                occurrence: 0,
                delta: -1,
            },
        )
        .unwrap();
        let printed = pretty_program(&mutated);
        assert!(printed.contains("index = (index + 1);"), "{printed}");
        // Everything else is untouched.
        assert!(printed.contains("index = 2;"));
    }

    #[test]
    fn set_constant_and_missing_occurrence() {
        let program = testme();
        let mutated = apply_mutation(
            &program,
            &Mutation::SetConstant {
                line: Line(4),
                occurrence: 0,
                value: 7,
            },
        )
        .unwrap();
        assert!(pretty_program(&mutated).contains("index = 7;"));
        let err = apply_mutation(
            &program,
            &Mutation::SetConstant {
                line: Line(4),
                occurrence: 3,
                value: 7,
            },
        )
        .unwrap_err();
        assert!(err.message.contains("no matching"));
    }

    #[test]
    fn replace_operator_on_condition() {
        let program = testme();
        let mutated = apply_mutation(
            &program,
            &Mutation::ReplaceOperator {
                line: Line(3),
                occurrence: 0,
                new_op: BinOp::Eq,
            },
        )
        .unwrap();
        assert!(pretty_program(&mutated).contains("if ((index == 1))"));
    }

    #[test]
    fn replace_second_operator_occurrence() {
        let program = parse_program("int f(int a, int b) { return a + b * 2; }").unwrap();
        // Operators in walk order: Add (outer), Mul (inner).
        let mutated = apply_mutation(
            &program,
            &Mutation::ReplaceOperator {
                line: Line(1),
                occurrence: 1,
                new_op: BinOp::Div,
            },
        )
        .unwrap();
        assert!(pretty_program(&mutated).contains("(a + (b / 2))"));
    }

    #[test]
    fn negate_condition_variants() {
        let program = testme();
        let mutated =
            apply_mutation(&program, &Mutation::NegateCondition { line: Line(3) }).unwrap();
        assert!(pretty_program(&mutated).contains("if (!(index != 1))"));
        let err = apply_mutation(&program, &Mutation::NegateCondition { line: Line(4) });
        assert!(err.is_err(), "assignments have no condition to negate");
    }

    #[test]
    fn replace_assignment_value() {
        let program = testme();
        let mutated = apply_mutation(
            &program,
            &Mutation::ReplaceAssignValue {
                line: Line(4),
                value: Expr::var("index"),
            },
        )
        .unwrap();
        assert!(pretty_program(&mutated).contains("index = index;"));
    }

    #[test]
    fn mutation_on_unknown_line_fails() {
        let program = testme();
        let err = apply_mutation(
            &program,
            &Mutation::BumpConstant {
                line: Line(99),
                occurrence: 0,
                delta: 1,
            },
        );
        assert!(err.is_err());
    }

    #[test]
    fn mutations_display() {
        let m = Mutation::BumpConstant {
            line: Line(4),
            occurrence: 0,
            delta: 1,
        };
        assert_eq!(m.to_string(), "bump constant #0 at line 4 by +1");
        assert_eq!(m.line(), Line(4));
    }
}
