//! Recursive-descent parser for MinC.

use crate::ast::*;
use crate::lexer::{tokenize, Keyword, LexError, Symbol, Token, TokenKind};
use std::fmt;

/// Error produced while parsing MinC source.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Line where the error was detected.
    pub line: Line,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(err: LexError) -> ParseError {
        ParseError {
            line: err.line,
            message: err.message,
        }
    }
}

/// Parses a complete MinC program from source text.
///
/// # Errors
///
/// Returns [`ParseError`] on lexical or syntactic errors.
///
/// # Examples
///
/// ```
/// use minic::parse_program;
/// let program = parse_program(r#"
///     int main(int x) {
///         if (x < 0) { x = 0 - x; }
///         assert(x >= 0);
///         return x;
///     }
/// "#).unwrap();
/// assert_eq!(program.functions.len(), 1);
/// assert_eq!(program.functions[0].name, "main");
/// ```
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    parser.program()
}

/// Parses a single expression (useful in tests and in the repair engine).
///
/// # Errors
///
/// Returns [`ParseError`] if the text is not a single valid expression.
pub fn parse_expr(source: &str) -> Result<Expr, ParseError> {
    let tokens = tokenize(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    let expr = parser.expr()?;
    parser.expect_eof()?;
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_ahead(&self, n: usize) -> &TokenKind {
        let idx = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn line(&self) -> Line {
        self.tokens[self.pos].line
    }

    fn advance(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line: self.line(),
            message: message.into(),
        })
    }

    fn expect_symbol(&mut self, symbol: Symbol) -> Result<(), ParseError> {
        if self.peek() == &TokenKind::Symbol(symbol) {
            self.advance();
            Ok(())
        } else {
            self.error(format!("expected {symbol:?}, found {:?}", self.peek()))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.advance();
                Ok(name)
            }
            other => self.error(format!("expected identifier, found {other:?}")),
        }
    }

    fn expect_int(&mut self) -> Result<i64, ParseError> {
        match *self.peek() {
            TokenKind::Int(v) => {
                self.advance();
                Ok(v)
            }
            ref other => self.error(format!("expected integer literal, found {other:?}")),
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if self.peek() == &TokenKind::Eof {
            Ok(())
        } else {
            self.error(format!("expected end of input, found {:?}", self.peek()))
        }
    }

    fn eat_symbol(&mut self, symbol: Symbol) -> bool {
        if self.peek() == &TokenKind::Symbol(symbol) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut program = Program::default();
        while self.peek() != &TokenKind::Eof {
            let line = self.line();
            let ret = self.parse_type_or_void()?;
            let name = self.expect_ident()?;
            if self.peek() == &TokenKind::Symbol(Symbol::LParen) {
                let function = self.function_rest(name, ret, line)?;
                program.functions.push(function);
            } else {
                let ret = ret.ok_or(ParseError {
                    line,
                    message: "global variables cannot be void".into(),
                })?;
                let global = self.global_rest(name, ret, line)?;
                program.globals.push(global);
            }
        }
        Ok(program)
    }

    fn parse_type_or_void(&mut self) -> Result<Option<Type>, ParseError> {
        match self.peek().clone() {
            TokenKind::Keyword(Keyword::Int) => {
                self.advance();
                Ok(Some(Type::Int))
            }
            TokenKind::Keyword(Keyword::Bool) => {
                self.advance();
                Ok(Some(Type::Bool))
            }
            TokenKind::Keyword(Keyword::Void) => {
                self.advance();
                Ok(None)
            }
            other => self.error(format!("expected a type, found {other:?}")),
        }
    }

    fn global_rest(&mut self, name: String, ty: Type, line: Line) -> Result<Global, ParseError> {
        let ty = if self.eat_symbol(Symbol::LBracket) {
            let size = self.expect_int()?;
            self.expect_symbol(Symbol::RBracket)?;
            if size <= 0 {
                return self.error("array size must be positive");
            }
            Type::Array(size as usize)
        } else {
            ty
        };
        let init = if self.eat_symbol(Symbol::Assign) {
            let negative = self.eat_symbol(Symbol::Minus);
            let v = self.expect_int()?;
            Some(if negative { -v } else { v })
        } else {
            None
        };
        self.expect_symbol(Symbol::Semi)?;
        Ok(Global {
            name,
            ty,
            init,
            line,
        })
    }

    fn function_rest(
        &mut self,
        name: String,
        ret: Option<Type>,
        line: Line,
    ) -> Result<Function, ParseError> {
        self.expect_symbol(Symbol::LParen)?;
        let mut params = Vec::new();
        if !self.eat_symbol(Symbol::RParen) {
            loop {
                let ty = self.parse_type_or_void()?.ok_or_else(|| ParseError {
                    line: self.line(),
                    message: "parameters cannot be void".into(),
                })?;
                let pname = self.expect_ident()?;
                params.push((pname, ty));
                if self.eat_symbol(Symbol::RParen) {
                    break;
                }
                self.expect_symbol(Symbol::Comma)?;
            }
        }
        let body = self.block()?;
        Ok(Function {
            name,
            params,
            ret,
            body,
            line,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_symbol(Symbol::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat_symbol(Symbol::RBrace) {
            if self.peek() == &TokenKind::Eof {
                return self.error("unterminated block");
            }
            stmts.push(self.statement()?);
        }
        Ok(stmts)
    }

    fn block_or_single(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if self.peek() == &TokenKind::Symbol(Symbol::LBrace) {
            self.block()
        } else {
            Ok(vec![self.statement()?])
        }
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        match self.peek().clone() {
            TokenKind::Keyword(Keyword::Int) | TokenKind::Keyword(Keyword::Bool) => {
                let ty = self.parse_type_or_void()?.expect("int/bool is not void");
                let name = self.expect_ident()?;
                let ty = if self.eat_symbol(Symbol::LBracket) {
                    let size = self.expect_int()?;
                    self.expect_symbol(Symbol::RBracket)?;
                    if size <= 0 {
                        return self.error("array size must be positive");
                    }
                    Type::Array(size as usize)
                } else {
                    ty
                };
                let init = if self.eat_symbol(Symbol::Assign) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect_symbol(Symbol::Semi)?;
                Ok(Stmt::Decl {
                    name,
                    ty,
                    init,
                    line,
                })
            }
            TokenKind::Keyword(Keyword::If) => {
                self.advance();
                self.expect_symbol(Symbol::LParen)?;
                let cond = self.expr()?;
                self.expect_symbol(Symbol::RParen)?;
                let then_branch = self.block_or_single()?;
                let else_branch = if self.peek() == &TokenKind::Keyword(Keyword::Else) {
                    self.advance();
                    self.block_or_single()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                    line,
                })
            }
            TokenKind::Keyword(Keyword::While) => {
                self.advance();
                self.expect_symbol(Symbol::LParen)?;
                let cond = self.expr()?;
                self.expect_symbol(Symbol::RParen)?;
                let body = self.block_or_single()?;
                Ok(Stmt::While { cond, body, line })
            }
            TokenKind::Keyword(Keyword::Assert) => {
                self.advance();
                self.expect_symbol(Symbol::LParen)?;
                let cond = self.expr()?;
                self.expect_symbol(Symbol::RParen)?;
                self.expect_symbol(Symbol::Semi)?;
                Ok(Stmt::Assert { cond, line })
            }
            TokenKind::Keyword(Keyword::Assume) => {
                self.advance();
                self.expect_symbol(Symbol::LParen)?;
                let cond = self.expr()?;
                self.expect_symbol(Symbol::RParen)?;
                self.expect_symbol(Symbol::Semi)?;
                Ok(Stmt::Assume { cond, line })
            }
            TokenKind::Keyword(Keyword::Return) => {
                self.advance();
                let value = if self.peek() == &TokenKind::Symbol(Symbol::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_symbol(Symbol::Semi)?;
                Ok(Stmt::Return { value, line })
            }
            TokenKind::Ident(name) => {
                // Assignment, array assignment, or bare call.
                if self.peek_ahead(1) == &TokenKind::Symbol(Symbol::LParen) {
                    let expr = self.expr()?;
                    self.expect_symbol(Symbol::Semi)?;
                    Ok(Stmt::ExprStmt { expr, line })
                } else {
                    self.advance();
                    let target = if self.eat_symbol(Symbol::LBracket) {
                        let idx = self.expr()?;
                        self.expect_symbol(Symbol::RBracket)?;
                        LValue::Index(name, Box::new(idx))
                    } else {
                        LValue::Var(name)
                    };
                    self.expect_symbol(Symbol::Assign)?;
                    let value = self.expr()?;
                    self.expect_symbol(Symbol::Semi)?;
                    Ok(Stmt::Assign {
                        target,
                        value,
                        line,
                    })
                }
            }
            other => self.error(format!("expected a statement, found {other:?}")),
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, ParseError> {
        let cond = self.logical_or()?;
        if self.eat_symbol(Symbol::Question) {
            let then_val = self.expr()?;
            self.expect_symbol(Symbol::Colon)?;
            let else_val = self.ternary()?;
            Ok(Expr::Cond(
                Box::new(cond),
                Box::new(then_val),
                Box::new(else_val),
            ))
        } else {
            Ok(cond)
        }
    }

    fn binary_level(
        &mut self,
        ops: &[(Symbol, BinOp)],
        next: fn(&mut Parser) -> Result<Expr, ParseError>,
    ) -> Result<Expr, ParseError> {
        let mut lhs = next(self)?;
        loop {
            let mut matched = None;
            for &(sym, op) in ops {
                if self.peek() == &TokenKind::Symbol(sym) {
                    matched = Some(op);
                    self.advance();
                    break;
                }
            }
            match matched {
                Some(op) => {
                    let rhs = next(self)?;
                    lhs = Expr::binary(op, lhs, rhs);
                }
                None => return Ok(lhs),
            }
        }
    }

    fn logical_or(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(&[(Symbol::OrOr, BinOp::Or)], Parser::logical_and)
    }

    fn logical_and(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(&[(Symbol::AndAnd, BinOp::And)], Parser::bit_or)
    }

    fn bit_or(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(&[(Symbol::Pipe, BinOp::BitOr)], Parser::bit_xor)
    }

    fn bit_xor(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(&[(Symbol::Caret, BinOp::BitXor)], Parser::bit_and)
    }

    fn bit_and(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(&[(Symbol::Amp, BinOp::BitAnd)], Parser::equality)
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            &[(Symbol::EqEq, BinOp::Eq), (Symbol::NotEq, BinOp::Ne)],
            Parser::relational,
        )
    }

    fn relational(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            &[
                (Symbol::Le, BinOp::Le),
                (Symbol::Ge, BinOp::Ge),
                (Symbol::Lt, BinOp::Lt),
                (Symbol::Gt, BinOp::Gt),
            ],
            Parser::shift,
        )
    }

    fn shift(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            &[(Symbol::Shl, BinOp::Shl), (Symbol::Shr, BinOp::Shr)],
            Parser::additive,
        )
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            &[(Symbol::Plus, BinOp::Add), (Symbol::Minus, BinOp::Sub)],
            Parser::multiplicative,
        )
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            &[
                (Symbol::Star, BinOp::Mul),
                (Symbol::Slash, BinOp::Div),
                (Symbol::Percent, BinOp::Rem),
            ],
            Parser::unary,
        )
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_symbol(Symbol::Minus) {
            Ok(Expr::unary(UnOp::Neg, self.unary()?))
        } else if self.eat_symbol(Symbol::Not) {
            Ok(Expr::unary(UnOp::Not, self.unary()?))
        } else if self.eat_symbol(Symbol::Tilde) {
            Ok(Expr::unary(UnOp::BitNot, self.unary()?))
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.advance();
                Ok(Expr::Int(v))
            }
            TokenKind::Keyword(Keyword::True) => {
                self.advance();
                Ok(Expr::Bool(true))
            }
            TokenKind::Keyword(Keyword::False) => {
                self.advance();
                Ok(Expr::Bool(false))
            }
            TokenKind::Keyword(Keyword::Nondet) => {
                self.advance();
                self.expect_symbol(Symbol::LParen)?;
                self.expect_symbol(Symbol::RParen)?;
                Ok(Expr::Nondet)
            }
            TokenKind::Symbol(Symbol::LParen) => {
                self.advance();
                let e = self.expr()?;
                self.expect_symbol(Symbol::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.advance();
                if self.eat_symbol(Symbol::LParen) {
                    let mut args = Vec::new();
                    if !self.eat_symbol(Symbol::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_symbol(Symbol::RParen) {
                                break;
                            }
                            self.expect_symbol(Symbol::Comma)?;
                        }
                    }
                    Ok(Expr::Call(name, args))
                } else if self.eat_symbol(Symbol::LBracket) {
                    let idx = self.expr()?;
                    self.expect_symbol(Symbol::RBracket)?;
                    Ok(Expr::Index(name, Box::new(idx)))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => self.error(format!("expected an expression, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_motivating_example() {
        // Program 1 from the paper (Sec. 2), adapted to MinC syntax.
        let src = r#"
            int Array[3];
            int testme(int index) {
                if (index != 1) {
                    index = 2;
                } else {
                    index = index + 2;
                }
                int i = index;
                assert(i >= 0 && i < 3);
                return Array[i];
            }
        "#;
        let program = parse_program(src).unwrap();
        assert_eq!(program.globals.len(), 1);
        assert_eq!(program.globals[0].ty, Type::Array(3));
        let f = program.function("testme").unwrap();
        assert_eq!(f.params, vec![("index".to_string(), Type::Int)]);
        assert_eq!(f.body.len(), 4);
        assert!(matches!(f.body[0], Stmt::If { .. }));
        assert!(matches!(f.body[2], Stmt::Assert { .. }));
    }

    #[test]
    fn expression_precedence() {
        let e = parse_expr("1 + 2 * 3 < 4 && x == 5 || y").unwrap();
        // Expect: ((1 + (2*3)) < 4 && (x == 5)) || y
        match e {
            Expr::Binary(BinOp::Or, lhs, rhs) => {
                assert_eq!(*rhs, Expr::var("y"));
                match *lhs {
                    Expr::Binary(BinOp::And, l, r) => {
                        assert!(matches!(*l, Expr::Binary(BinOp::Lt, _, _)));
                        assert!(matches!(*r, Expr::Binary(BinOp::Eq, _, _)));
                    }
                    other => panic!("unexpected lhs {other:?}"),
                }
            }
            other => panic!("unexpected parse {other:?}"),
        }
    }

    #[test]
    fn ternary_and_calls() {
        let e = parse_expr("Climb_Inhibit ? Up_Sep + 100 : Up_Sep").unwrap();
        assert!(matches!(e, Expr::Cond(..)));
        let e = parse_expr("max(a, b + 1)").unwrap();
        match e {
            Expr::Call(name, args) => {
                assert_eq!(name, "max");
                assert_eq!(args.len(), 2);
            }
            other => panic!("unexpected parse {other:?}"),
        }
    }

    #[test]
    fn unary_operators_nest() {
        let e = parse_expr("!-~x").unwrap();
        assert_eq!(
            e,
            Expr::unary(
                UnOp::Not,
                Expr::unary(UnOp::Neg, Expr::unary(UnOp::BitNot, Expr::var("x")))
            )
        );
    }

    #[test]
    fn statements_without_braces() {
        let src = r#"
            int main(int x) {
                if (x > 0) x = x - 1; else x = x + 1;
                while (x > 0) x = x - 1;
                return x;
            }
        "#;
        let program = parse_program(src).unwrap();
        let f = program.function("main").unwrap();
        assert!(matches!(f.body[0], Stmt::If { .. }));
        assert!(matches!(f.body[1], Stmt::While { .. }));
    }

    #[test]
    fn global_initializers_and_negative_values() {
        let program =
            parse_program("int limit = -5; int table[4]; int main() { return limit; }").unwrap();
        assert_eq!(program.globals[0].init, Some(-5));
        assert_eq!(program.globals[1].ty, Type::Array(4));
        assert_eq!(program.globals[1].init, None);
    }

    #[test]
    fn array_assignment_and_read() {
        let src = "int a[2]; void main(int x) { a[0] = x; a[1] = a[0] + 1; }";
        let program = parse_program(src).unwrap();
        let f = program.function("main").unwrap();
        assert!(matches!(
            f.body[0],
            Stmt::Assign {
                target: LValue::Index(..),
                ..
            }
        ));
    }

    #[test]
    fn nondet_and_bare_calls() {
        let src = "int log(int v) { return v; } void main() { int x = nondet(); log(x); }";
        let program = parse_program(src).unwrap();
        let f = program.function("main").unwrap();
        assert!(matches!(f.body[1], Stmt::ExprStmt { .. }));
        match &f.body[0] {
            Stmt::Decl { init, .. } => assert_eq!(init, &Some(Expr::Nondet)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn line_numbers_attach_to_statements() {
        let src = "int main() {\n  int x = 1;\n  x = 2;\n  return x;\n}";
        let program = parse_program(src).unwrap();
        let f = program.function("main").unwrap();
        assert_eq!(f.body[0].line(), Line(2));
        assert_eq!(f.body[1].line(), Line(3));
        assert_eq!(f.body[2].line(), Line(4));
    }

    #[test]
    fn parse_errors_carry_location() {
        let err = parse_program("int main() { x = ; }").unwrap_err();
        assert_eq!(err.line, Line(1));
        assert!(err.message.contains("expected an expression"));
        assert!(parse_program("int main( { }").is_err());
        assert!(parse_expr("1 +").is_err());
        assert!(parse_expr("1 2").is_err());
    }

    #[test]
    fn void_globals_are_rejected() {
        assert!(parse_program("void g; int main() { return 0; }").is_err());
    }
}
