//! Pretty-printing of MinC programs back to source text.
//!
//! The printer is used to display mutated programs (fault-injected benchmark
//! versions, repair candidates) and in round-trip tests of the parser.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a whole program as MinC source text.
///
/// # Examples
///
/// ```
/// use minic::{parse_program, pretty_program};
/// let program = parse_program("int main(int x) { return x + 1; }").unwrap();
/// let text = pretty_program(&program);
/// assert!(text.contains("return (x + 1);"));
/// // Pretty-printing is stable: parsing the output and printing again is a
/// // fixed point.
/// let reparsed = parse_program(&text).unwrap();
/// assert_eq!(pretty_program(&reparsed), text);
/// ```
pub fn pretty_program(program: &Program) -> String {
    let mut out = String::new();
    for global in &program.globals {
        match global.ty {
            Type::Array(n) => {
                let _ = writeln!(out, "int {}[{}];", global.name, n);
            }
            ty => match global.init {
                Some(v) => {
                    let _ = writeln!(out, "{} {} = {};", ty_name(ty), global.name, v);
                }
                None => {
                    let _ = writeln!(out, "{} {};", ty_name(ty), global.name);
                }
            },
        }
    }
    for function in &program.functions {
        let _ = writeln!(out, "{}", pretty_function(function));
    }
    out
}

/// Renders one function definition.
pub fn pretty_function(function: &Function) -> String {
    let mut out = String::new();
    let ret = function
        .ret
        .map_or("void".to_string(), |t| ty_name(t).to_string());
    let params: Vec<String> = function
        .params
        .iter()
        .map(|(n, t)| format!("{} {}", ty_name(*t), n))
        .collect();
    let _ = writeln!(out, "{ret} {}({}) {{", function.name, params.join(", "));
    for stmt in &function.body {
        write_stmt(&mut out, stmt, 1);
    }
    let _ = write!(out, "}}");
    out
}

/// Renders a single statement (without trailing newline handling for blocks).
pub fn pretty_stmt(stmt: &Stmt) -> String {
    let mut out = String::new();
    write_stmt(&mut out, stmt, 0);
    out.trim_end().to_string()
}

/// Renders an expression with full parenthesization (so that precedence never
/// needs to be re-derived when re-parsing).
pub fn pretty_expr(expr: &Expr) -> String {
    match expr {
        Expr::Int(v) => {
            if *v < 0 {
                format!("(0 - {})", -v)
            } else {
                v.to_string()
            }
        }
        Expr::Bool(b) => b.to_string(),
        Expr::Var(name) => name.clone(),
        Expr::Index(name, idx) => format!("{name}[{}]", pretty_expr(idx)),
        Expr::Unary(op, e) => format!("{op}{}", pretty_expr_atom(e)),
        Expr::Binary(op, lhs, rhs) => {
            format!("({} {op} {})", pretty_expr(lhs), pretty_expr(rhs))
        }
        Expr::Cond(c, t, e) => format!(
            "({} ? {} : {})",
            pretty_expr(c),
            pretty_expr(t),
            pretty_expr(e)
        ),
        Expr::Call(name, args) => {
            let args: Vec<String> = args.iter().map(pretty_expr).collect();
            format!("{name}({})", args.join(", "))
        }
        Expr::Nondet => "nondet()".to_string(),
    }
}

fn pretty_expr_atom(expr: &Expr) -> String {
    // Binary and conditional expressions are already parenthesized by
    // `pretty_expr`, so no extra wrapping is needed for any operand shape.
    pretty_expr(expr)
}

fn ty_name(ty: Type) -> &'static str {
    match ty {
        Type::Int => "int",
        Type::Bool => "bool",
        Type::Array(_) => "int",
    }
}

fn write_stmt(out: &mut String, stmt: &Stmt, indent: usize) {
    let pad = "    ".repeat(indent);
    match stmt {
        Stmt::Decl { name, ty, init, .. } => match ty {
            Type::Array(n) => {
                let _ = writeln!(out, "{pad}int {name}[{n}];");
            }
            _ => match init {
                Some(e) => {
                    let _ = writeln!(out, "{pad}{} {name} = {};", ty_name(*ty), pretty_expr(e));
                }
                None => {
                    let _ = writeln!(out, "{pad}{} {name};", ty_name(*ty));
                }
            },
        },
        Stmt::Assign { target, value, .. } => {
            let lhs = match target {
                LValue::Var(n) => n.clone(),
                LValue::Index(n, idx) => format!("{n}[{}]", pretty_expr(idx)),
            };
            let _ = writeln!(out, "{pad}{lhs} = {};", pretty_expr(value));
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            let _ = writeln!(out, "{pad}if ({}) {{", pretty_expr(cond));
            for s in then_branch {
                write_stmt(out, s, indent + 1);
            }
            if else_branch.is_empty() {
                let _ = writeln!(out, "{pad}}}");
            } else {
                let _ = writeln!(out, "{pad}}} else {{");
                for s in else_branch {
                    write_stmt(out, s, indent + 1);
                }
                let _ = writeln!(out, "{pad}}}");
            }
        }
        Stmt::While { cond, body, .. } => {
            let _ = writeln!(out, "{pad}while ({}) {{", pretty_expr(cond));
            for s in body {
                write_stmt(out, s, indent + 1);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::Assert { cond, .. } => {
            let _ = writeln!(out, "{pad}assert({});", pretty_expr(cond));
        }
        Stmt::Assume { cond, .. } => {
            let _ = writeln!(out, "{pad}assume({});", pretty_expr(cond));
        }
        Stmt::Return { value, .. } => match value {
            Some(e) => {
                let _ = writeln!(out, "{pad}return {};", pretty_expr(e));
            }
            None => {
                let _ = writeln!(out, "{pad}return;");
            }
        },
        Stmt::ExprStmt { expr, .. } => {
            let _ = writeln!(out, "{pad}{};", pretty_expr(expr));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program};

    #[test]
    fn pretty_print_is_a_fixed_point_of_parsing() {
        let src = r#"
            int Array[3];
            int limit = -7;
            int helper(int a, int b) {
                return a > b ? a : b;
            }
            int main(int index) {
                int i = 0;
                if (index != 1) { index = 2; } else { index = index + 2; }
                while (i < index) { i = i + 1; }
                assert(i >= 0 && i < 3);
                return Array[i] + helper(i, index);
            }
        "#;
        let program = parse_program(src).unwrap();
        let printed = pretty_program(&program);
        let reparsed = parse_program(&printed).unwrap();
        assert_eq!(pretty_program(&reparsed), printed);
        assert_eq!(reparsed.functions.len(), program.functions.len());
        assert_eq!(reparsed.num_statements(), program.num_statements());
    }

    #[test]
    fn negative_literals_round_trip() {
        let e = parse_expr("x + (0 - 5)").unwrap();
        let printed = pretty_expr(&e);
        let reparsed = parse_expr(&printed).unwrap();
        assert_eq!(pretty_expr(&reparsed), printed);
    }

    #[test]
    fn statements_print_compactly() {
        let program = parse_program("void f() { assume(true); return; }").unwrap();
        let f = &program.functions[0];
        assert_eq!(pretty_stmt(&f.body[0]), "assume(true);");
        assert_eq!(pretty_stmt(&f.body[1]), "return;");
    }

    #[test]
    fn unary_and_nested_exprs() {
        let e = parse_expr("!(a < b) && ~c == -d").unwrap();
        let printed = pretty_expr(&e);
        let reparsed = parse_expr(&printed).unwrap();
        assert_eq!(pretty_expr(&reparsed), printed);
    }
}
