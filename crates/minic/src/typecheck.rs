//! A lightweight type and scope checker for MinC.
//!
//! MinC follows C's permissive attitude to `int`/`bool` mixing (Booleans
//! coerce to 0/1 and integers are truthy when non-zero), so the checker
//! focuses on the errors that would make symbolic encoding meaningless:
//! undeclared variables, unknown functions, arity mismatches, indexing
//! non-arrays, assigning to array names without an index, and using the value
//! of a `void` function.

use crate::ast::*;
use std::collections::HashMap;
use std::fmt;

/// A diagnosed type or scope error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TypeError {
    /// Line where the error occurs (best effort).
    pub line: Line,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error at {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TypeError {}

/// Checks a program, returning all diagnosed errors (empty when well-typed).
///
/// # Examples
///
/// ```
/// use minic::{parse_program, check_program};
/// let program = parse_program("int main(int x) { return x + 1; }").unwrap();
/// assert!(check_program(&program).is_empty());
/// let bad = parse_program("int main() { return y; }").unwrap();
/// assert_eq!(check_program(&bad).len(), 1);
/// ```
pub fn check_program(program: &Program) -> Vec<TypeError> {
    let mut errors = Vec::new();
    let signatures: HashMap<&str, (usize, Option<Type>)> = program
        .functions
        .iter()
        .map(|f| (f.name.as_str(), (f.params.len(), f.ret)))
        .collect();

    let mut global_types: HashMap<&str, Type> = HashMap::new();
    for global in &program.globals {
        if global_types
            .insert(global.name.as_str(), global.ty)
            .is_some()
        {
            errors.push(TypeError {
                line: global.line,
                message: format!("duplicate global {:?}", global.name),
            });
        }
        if matches!(global.ty, Type::Array(_)) && global.init.is_some() {
            errors.push(TypeError {
                line: global.line,
                message: format!(
                    "array global {:?} cannot have a scalar initializer",
                    global.name
                ),
            });
        }
    }

    for function in &program.functions {
        check_function(function, &global_types, &signatures, &mut errors);
    }
    errors
}

fn check_function(
    function: &Function,
    globals: &HashMap<&str, Type>,
    signatures: &HashMap<&str, (usize, Option<Type>)>,
    errors: &mut Vec<TypeError>,
) {
    // C89-style: collect every local declaration of the function up front so
    // order of declaration vs. use inside branches does not matter.
    let mut locals: HashMap<String, Type> = HashMap::new();
    for (name, ty) in &function.params {
        if locals.insert(name.clone(), *ty).is_some() {
            errors.push(TypeError {
                line: function.line,
                message: format!("duplicate parameter {name:?} in {:?}", function.name),
            });
        }
    }
    function.walk_stmts(&mut |stmt| {
        if let Stmt::Decl { name, ty, line, .. } = stmt {
            if locals.contains_key(name) || globals.contains_key(name.as_str()) {
                errors.push(TypeError {
                    line: *line,
                    message: format!("redeclaration of {name:?}"),
                });
            }
            locals.insert(name.clone(), *ty);
        }
    });

    let lookup = |name: &str| -> Option<Type> {
        locals
            .get(name)
            .copied()
            .or_else(|| globals.get(name).copied())
    };

    let check_expr = |expr: &Expr, line: Line, errors: &mut Vec<TypeError>| {
        expr.walk(&mut |e| match e {
            Expr::Var(name) => match lookup(name) {
                None => errors.push(TypeError {
                    line,
                    message: format!("use of undeclared variable {name:?}"),
                }),
                Some(Type::Array(_)) => errors.push(TypeError {
                    line,
                    message: format!("array {name:?} used without an index"),
                }),
                Some(_) => {}
            },
            Expr::Index(name, _) => match lookup(name) {
                None => errors.push(TypeError {
                    line,
                    message: format!("use of undeclared array {name:?}"),
                }),
                Some(Type::Array(_)) => {}
                Some(other) => errors.push(TypeError {
                    line,
                    message: format!("indexing non-array {name:?} of type {other}"),
                }),
            },
            Expr::Call(name, args) => match signatures.get(name.as_str()) {
                None => errors.push(TypeError {
                    line,
                    message: format!("call to unknown function {name:?}"),
                }),
                Some((arity, ret)) => {
                    if *arity != args.len() {
                        errors.push(TypeError {
                            line,
                            message: format!(
                                "function {name:?} expects {arity} arguments, got {}",
                                args.len()
                            ),
                        });
                    }
                    if ret.is_none() {
                        errors.push(TypeError {
                            line,
                            message: format!("void function {name:?} used as a value"),
                        });
                    }
                }
            },
            _ => {}
        });
    };

    function.walk_stmts(&mut |stmt| match stmt {
        Stmt::Decl {
            init,
            line,
            ty,
            name,
        } => {
            if let Some(init) = init {
                if matches!(ty, Type::Array(_)) {
                    errors.push(TypeError {
                        line: *line,
                        message: format!("array local {name:?} cannot have an initializer"),
                    });
                }
                check_expr(init, *line, errors);
            }
        }
        Stmt::Assign {
            target,
            value,
            line,
        } => {
            match target {
                LValue::Var(name) => match lookup(name) {
                    None => errors.push(TypeError {
                        line: *line,
                        message: format!("assignment to undeclared variable {name:?}"),
                    }),
                    Some(Type::Array(_)) => errors.push(TypeError {
                        line: *line,
                        message: format!("cannot assign to array {name:?} without an index"),
                    }),
                    Some(_) => {}
                },
                LValue::Index(name, idx) => {
                    match lookup(name) {
                        None => errors.push(TypeError {
                            line: *line,
                            message: format!("assignment to undeclared array {name:?}"),
                        }),
                        Some(Type::Array(_)) => {}
                        Some(other) => errors.push(TypeError {
                            line: *line,
                            message: format!(
                                "indexed assignment to non-array {name:?} of type {other}"
                            ),
                        }),
                    }
                    check_expr(idx, *line, errors);
                }
            }
            check_expr(value, *line, errors);
        }
        Stmt::If { cond, line, .. } | Stmt::While { cond, line, .. } => {
            check_expr(cond, *line, errors)
        }
        Stmt::Assert { cond, line } | Stmt::Assume { cond, line } => {
            check_expr(cond, *line, errors)
        }
        Stmt::Return { value, line } => {
            if let Some(value) = value {
                check_expr(value, *line, errors);
            }
        }
        Stmt::ExprStmt { expr, line } => {
            // A bare call to a void function is fine; only check the callee
            // and arguments, not the "used as value" rule.
            if let Expr::Call(name, args) = expr {
                match signatures.get(name.as_str()) {
                    None => errors.push(TypeError {
                        line: *line,
                        message: format!("call to unknown function {name:?}"),
                    }),
                    Some((arity, _)) if *arity != args.len() => errors.push(TypeError {
                        line: *line,
                        message: format!(
                            "function {name:?} expects {arity} arguments, got {}",
                            args.len()
                        ),
                    }),
                    Some(_) => {}
                }
                for arg in args {
                    check_expr(arg, *line, errors);
                }
            } else {
                check_expr(expr, *line, errors);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn errors_of(src: &str) -> Vec<TypeError> {
        check_program(&parse_program(src).unwrap())
    }

    #[test]
    fn well_typed_program_passes() {
        let errs = errors_of(
            r#"
            int table[4];
            int get(int i) { assume(i >= 0 && i < 4); return table[i]; }
            int main(int x) {
                int y = get(x) + 1;
                if (y > 3) { y = 3; }
                assert(y <= 3);
                return y;
            }
            "#,
        );
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn undeclared_variable_reported() {
        let errs = errors_of("int main() { return ghost; }");
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("undeclared variable"));
    }

    #[test]
    fn unknown_function_and_arity() {
        let errs = errors_of("int main() { return missing(1); }");
        assert!(errs.iter().any(|e| e.message.contains("unknown function")));
        let errs = errors_of("int id(int x) { return x; } int main() { return id(1, 2); }");
        assert!(errs
            .iter()
            .any(|e| e.message.contains("expects 1 arguments")));
    }

    #[test]
    fn array_misuse_detected() {
        let errs = errors_of("int a[3]; int main() { return a; }");
        assert!(errs.iter().any(|e| e.message.contains("without an index")));
        let errs = errors_of("int main(int x) { return x[0]; }");
        assert!(errs
            .iter()
            .any(|e| e.message.contains("indexing non-array")));
        let errs = errors_of("int a[3]; void main() { a = 1; }");
        assert!(errs
            .iter()
            .any(|e| e.message.contains("cannot assign to array")));
    }

    #[test]
    fn void_function_as_value() {
        let errs = errors_of("void log(int x) { return; } int main() { return log(1); }");
        assert!(errs.iter().any(|e| e.message.contains("void function")));
        // But a bare call statement is fine.
        let errs = errors_of("void log(int x) { return; } int main() { log(1); return 0; }");
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn redeclaration_detected() {
        let errs = errors_of("int main() { int x = 1; int x = 2; return x; }");
        assert!(errs.iter().any(|e| e.message.contains("redeclaration")));
    }

    #[test]
    fn duplicate_global_detected() {
        let errs = errors_of("int g; int g; int main() { return g; }");
        assert!(errs.iter().any(|e| e.message.contains("duplicate global")));
    }
}
