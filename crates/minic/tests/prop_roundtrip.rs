//! Property-based tests for the MinC frontend: pretty-printing randomly
//! generated expressions and statements must re-parse to the same structure,
//! and mutations must leave the rest of the program untouched.

use minic::ast::*;
use minic::{apply_mutation, constant_sites, parse_expr, parse_program, pretty_expr, pretty_program, Mutation};
use proptest::prelude::*;

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..100).prop_map(Expr::Int),
        any::<bool>().prop_map(Expr::Bool),
        prop_oneof![Just("x"), Just("y"), Just("z")].prop_map(|n| Expr::Var(n.to_string())),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), prop_oneof![
                Just(BinOp::Add), Just(BinOp::Sub), Just(BinOp::Mul), Just(BinOp::Div),
                Just(BinOp::Lt), Just(BinOp::Le), Just(BinOp::Eq), Just(BinOp::And),
                Just(BinOp::Or), Just(BinOp::BitXor), Just(BinOp::Shl),
            ])
                .prop_map(|(a, b, op)| Expr::binary(op, a, b)),
            (inner.clone(), prop_oneof![Just(UnOp::Neg), Just(UnOp::Not), Just(UnOp::BitNot)])
                .prop_map(|(e, op)| Expr::unary(op, e)),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(c, t, e)| Expr::Cond(Box::new(c), Box::new(t), Box::new(e))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn pretty_expr_reparses_to_same_structure(e in arb_expr()) {
        let printed = pretty_expr(&e);
        let reparsed = parse_expr(&printed).unwrap();
        // Printing is fully parenthesized, so a print/parse cycle is the
        // identity on structure.
        prop_assert_eq!(reparsed, e);
    }

    #[test]
    fn program_pretty_print_is_stable(cond in arb_expr(), rhs in arb_expr()) {
        let program = Program {
            globals: vec![],
            functions: vec![Function {
                name: "main".into(),
                params: vec![("x".into(), Type::Int), ("y".into(), Type::Int), ("z".into(), Type::Int)],
                ret: Some(Type::Int),
                body: vec![
                    Stmt::If {
                        cond,
                        then_branch: vec![Stmt::Assign {
                            target: LValue::Var("x".into()),
                            value: rhs,
                            line: Line(3),
                        }],
                        else_branch: vec![],
                        line: Line(2),
                    },
                    Stmt::Return { value: Some(Expr::var("x")), line: Line(4) },
                ],
                line: Line(1),
            }],
        };
        let printed = pretty_program(&program);
        let reparsed = parse_program(&printed).unwrap();
        prop_assert_eq!(pretty_program(&reparsed), printed);
    }

    #[test]
    fn bump_constant_changes_exactly_one_site(delta in -3i64..=3) {
        prop_assume!(delta != 0);
        let program = parse_program(
            "int main(int x) {\nint y = x + 10;\nif (y > 20) { y = 30; }\nreturn y;\n}"
        ).unwrap();
        let sites = constant_sites(&program);
        for site in &sites {
            let mutated = apply_mutation(&program, &Mutation::BumpConstant {
                line: site.line,
                occurrence: site.occurrence,
                delta,
            }).unwrap();
            let new_sites = constant_sites(&mutated);
            prop_assert_eq!(new_sites.len(), sites.len());
            let mut changed = 0;
            for (old, new) in sites.iter().zip(new_sites.iter()) {
                if old.value != new.value {
                    changed += 1;
                    prop_assert_eq!(new.value, old.value + delta);
                }
            }
            prop_assert_eq!(changed, 1, "exactly one constant must change");
        }
    }
}
