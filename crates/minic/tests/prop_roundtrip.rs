//! Randomized tests for the MinC frontend: pretty-printing randomly
//! generated expressions and statements must re-parse to the same structure,
//! and mutations must leave the rest of the program untouched. Seeded PRNG
//! keeps every run deterministic.

use minic::ast::*;
use minic::{
    apply_mutation, constant_sites, parse_expr, parse_program, pretty_expr, pretty_program,
    Mutation,
};
use prng::SplitMix64;

/// Generates a random expression with bounded depth, mirroring the shapes the
/// old proptest strategy produced: int/bool/var leaves, the full binary
/// operator set, unary operators, and conditional expressions.
fn random_expr(rng: &mut SplitMix64, depth: usize) -> Expr {
    if depth == 0 || rng.gen_bool(0.3) {
        return match rng.gen_range(0usize..3) {
            0 => Expr::Int(rng.gen_range(0i64..100)),
            1 => Expr::Bool(rng.gen_bool(0.5)),
            _ => Expr::Var(["x", "y", "z"][rng.gen_range(0usize..3)].to_string()),
        };
    }
    match rng.gen_range(0usize..3) {
        0 => {
            const OPS: [BinOp; 11] = [
                BinOp::Add,
                BinOp::Sub,
                BinOp::Mul,
                BinOp::Div,
                BinOp::Lt,
                BinOp::Le,
                BinOp::Eq,
                BinOp::And,
                BinOp::Or,
                BinOp::BitXor,
                BinOp::Shl,
            ];
            let op = OPS[rng.gen_range(0..OPS.len())];
            let a = random_expr(rng, depth - 1);
            let b = random_expr(rng, depth - 1);
            Expr::binary(op, a, b)
        }
        1 => {
            const OPS: [UnOp; 3] = [UnOp::Neg, UnOp::Not, UnOp::BitNot];
            let op = OPS[rng.gen_range(0..OPS.len())];
            Expr::unary(op, random_expr(rng, depth - 1))
        }
        _ => Expr::Cond(
            Box::new(random_expr(rng, depth - 1)),
            Box::new(random_expr(rng, depth - 1)),
            Box::new(random_expr(rng, depth - 1)),
        ),
    }
}

#[test]
fn pretty_expr_reparses_to_same_structure() {
    let mut rng = SplitMix64::seed_from_u64(101);
    for _ in 0..192 {
        let e = random_expr(&mut rng, 4);
        let printed = pretty_expr(&e);
        let reparsed = parse_expr(&printed).unwrap();
        // Printing is fully parenthesized, so a print/parse cycle is the
        // identity on structure.
        assert_eq!(reparsed, e, "printed: {printed}");
    }
}

#[test]
fn program_pretty_print_is_stable() {
    let mut rng = SplitMix64::seed_from_u64(103);
    for _ in 0..192 {
        let cond = random_expr(&mut rng, 3);
        let rhs = random_expr(&mut rng, 3);
        let program = Program {
            globals: vec![],
            functions: vec![Function {
                name: "main".into(),
                params: vec![
                    ("x".into(), Type::Int),
                    ("y".into(), Type::Int),
                    ("z".into(), Type::Int),
                ],
                ret: Some(Type::Int),
                body: vec![
                    Stmt::If {
                        cond,
                        then_branch: vec![Stmt::Assign {
                            target: LValue::Var("x".into()),
                            value: rhs,
                            line: Line(3),
                        }],
                        else_branch: vec![],
                        line: Line(2),
                    },
                    Stmt::Return {
                        value: Some(Expr::var("x")),
                        line: Line(4),
                    },
                ],
                line: Line(1),
            }],
        };
        let printed = pretty_program(&program);
        let reparsed = parse_program(&printed).unwrap();
        assert_eq!(pretty_program(&reparsed), printed);
    }
}

#[test]
fn bump_constant_changes_exactly_one_site() {
    let program =
        parse_program("int main(int x) {\nint y = x + 10;\nif (y > 20) { y = 30; }\nreturn y;\n}")
            .unwrap();
    let sites = constant_sites(&program);
    for delta in [-3i64, -2, -1, 1, 2, 3] {
        for site in &sites {
            let mutated = apply_mutation(
                &program,
                &Mutation::BumpConstant {
                    line: site.line,
                    occurrence: site.occurrence,
                    delta,
                },
            )
            .unwrap();
            let new_sites = constant_sites(&mutated);
            assert_eq!(new_sites.len(), sites.len());
            let mut changed = 0;
            for (old, new) in sites.iter().zip(new_sites.iter()) {
                if old.value != new.value {
                    changed += 1;
                    assert_eq!(new.value, old.value + delta);
                }
            }
            assert_eq!(changed, 1, "exactly one constant must change");
        }
    }
}
