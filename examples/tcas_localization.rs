//! Localize an injected fault in the TCAS collision-avoidance benchmark —
//! the walk-through of Figure 2 in the paper (version "v1": the climb-inhibit
//! bias constant is 300 instead of 100).
//!
//! Run with: `cargo run --example tcas_localization --release`

use bmc::Spec;
use bugassist::{Localizer, LocalizerConfig};
use siemens::{
    tcas_golden_output, tcas_test_vectors, tcas_trusted_lines, tcas_versions, TCAS_ENTRY,
    TCAS_SOURCE,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let version = tcas_versions().into_iter().next().expect("v1 exists");
    println!(
        "TCAS version {}: fault at line {} ({})",
        version.name, version.faulty_lines[0].0, version.error_type
    );
    let faulty = version.build(TCAS_SOURCE);

    // Find failing test vectors by comparing against the golden outputs of
    // the correct program, exactly like the paper does for the Siemens suite.
    let pool = tcas_test_vectors(300, 2011);
    let interp = siemens::tcas_interp_config();
    let failing: Vec<&Vec<i64>> = pool
        .iter()
        .filter(|input| {
            let golden = tcas_golden_output(input);
            let outcome = bmc::run_program(&faulty, TCAS_ENTRY, input, &[], interp);
            outcome.result != Some(golden) || !outcome.is_ok()
        })
        .collect();
    println!("failing test vectors in the pool: {}", failing.len());

    // Localize the first two failing vectors and aggregate the blamed lines.
    let mut config = LocalizerConfig {
        encode: bmc::EncodeConfig {
            width: 16,
            unwind: 6,
            max_inline_depth: 8,
            concretize: Vec::new(),
            ..bmc::EncodeConfig::default()
        },
        max_suspect_sets: 8,
        trusted_lines: tcas_trusted_lines(),
        ..LocalizerConfig::default()
    };
    config.strategy = maxsat::Strategy::FuMalik;

    for input in failing.iter().take(2) {
        let golden = tcas_golden_output(input);
        let localizer = Localizer::new(&faulty, TCAS_ENTRY, &Spec::ReturnEquals(golden), &config)?;
        let report = localizer.localize(input)?;
        let lines: Vec<u32> = report.suspect_lines.iter().map(|l| l.0).collect();
        println!(
            "input {:?}\n  suspects (lines): {:?}\n  injected fault blamed: {}\n  time: {} ms",
            input,
            lines,
            version.faulty_lines.iter().any(|l| report.blames_line(*l)),
            report.stats.elapsed_ms
        );
    }
    Ok(())
}
