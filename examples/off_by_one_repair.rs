//! Suggest an off-by-one repair for the strncat buffer-overflow demo
//! (Program 2, Sec. 6.3 of the paper). Library lines are trusted (hard), so
//! the blame — and the fix — lands on the caller's length constant.
//!
//! Run with: `cargo run --example off_by_one_repair --release`

use bmc::{EncodeConfig, Spec};
use bugassist::{suggest_repairs, Localizer, LocalizerConfig, RepairConfig, RepairKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let benchmark = siemens::strncat_demo();
    let program = benchmark.faulty_program();
    println!("program under repair:\n{}", minic::pretty_program(&program));

    let localizer_config = LocalizerConfig {
        encode: EncodeConfig {
            width: benchmark.width,
            unwind: benchmark.unwind,
            max_inline_depth: 8,
            concretize: Vec::new(),
            ..EncodeConfig::default()
        },
        max_suspect_sets: 6,
        trusted_lines: benchmark.trusted_lines.clone(),
        ..LocalizerConfig::default()
    };

    // Localization first (the library implementation of strncat is trusted).
    let localizer = Localizer::new(
        &program,
        benchmark.entry,
        &Spec::Assertions,
        &localizer_config,
    )?;
    let report = localizer.localize(&benchmark.test_inputs[0])?;
    println!(
        "suspect lines: {:?}",
        report.suspect_lines.iter().map(|l| l.0).collect::<Vec<_>>()
    );

    // Then the Algorithm 2 search: bump constants at the suspect lines by ±1
    // and keep the candidates that pass the failing tests and BMC.
    let repairs = suggest_repairs(
        &program,
        benchmark.entry,
        &Spec::Assertions,
        &benchmark.test_inputs,
        &RepairConfig {
            localizer: localizer_config,
            kinds: vec![RepairKind::OffByOne],
            validate_with_bmc: true,
            max_repairs: 0,
        },
    )?;
    if repairs.is_empty() {
        println!("no off-by-one repair found");
    }
    for repair in &repairs {
        println!(
            "validated repair: {repair} (BMC verified: {})",
            repair.bmc_verified
        );
    }
    Ok(())
}
