//! Loop debugging (Program 3, Sec. 6.4): the integer square-root function
//! whose bug (a missing `- 1` after the loop) only becomes understandable by
//! looking at a specific loop iteration. Weighted per-iteration selectors
//! point at the earliest iteration that can reproduce the failure.
//!
//! Run with: `cargo run --example loop_debugging --release`

use bmc::{EncodeConfig, Spec};
use bugassist::{localize_faulty_iteration, LocalizerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let benchmark = siemens::squareroot();
    let program = benchmark.program();
    println!("program:\n{}", minic::pretty_program(&program));

    let config = LocalizerConfig {
        encode: EncodeConfig {
            width: benchmark.width,
            unwind: benchmark.unwind,
            max_inline_depth: 8,
            concretize: Vec::new(),
            ..EncodeConfig::default()
        },
        max_suspect_sets: 6,
        ..LocalizerConfig::default()
    };
    let loop_report = localize_faulty_iteration(
        &program,
        benchmark.entry,
        &Spec::Assertions,
        &benchmark.test_inputs[0],
        &config,
    )?;

    println!(
        "suspect lines: {:?}",
        loop_report
            .report
            .suspect_lines
            .iter()
            .map(|l| l.0)
            .collect::<Vec<_>>()
    );
    println!(
        "blamed loop instances (line, iteration): {:?}",
        loop_report
            .blamed_iterations
            .iter()
            .map(|(l, k)| (l.0, *k))
            .collect::<Vec<_>>()
    );
    match loop_report.first_faulty_iteration {
        Some((line, iteration)) => println!(
            "earliest iteration that can reproduce the failure: iteration {iteration} of the loop at line {}",
            line.0
        ),
        None => println!("no loop instance was blamed"),
    }
    Ok(())
}
