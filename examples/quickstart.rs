//! Quickstart: localize the paper's motivating example (Program 1, Sec. 2).
//!
//! Run with: `cargo run --example quickstart`

use bmc::{EncodeConfig, Spec};
use bugassist::{Localizer, LocalizerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Program 1 from the paper: reading Array[index + 2] overflows when the
    // input index is 1.
    let source = "\
int Array[3];
int testme(int index) {
    if (index != 1) {
        index = 2;
    } else {
        index = index + 2;
    }
    int i = index;
    return Array[i];
}";
    let program = minic::parse_program(source)?;

    // Step 1 (paper Sec. 4.1): find a failing execution. Here we let bounded
    // model checking discover the failing input instead of supplying a test.
    let encode = EncodeConfig {
        width: 8,
        ..EncodeConfig::default()
    };
    let failing = bmc::find_failing_input(&program, "testme", &Spec::Assertions, &encode)?
        .expect("the program has a bug");
    println!("failing test input found by BMC: index = {}", failing[0]);

    // Steps 2–3 (Algorithm 1): build the extended trace formula and enumerate
    // CoMSSes with partial MAX-SAT.
    let config = LocalizerConfig {
        encode,
        ..LocalizerConfig::default()
    };
    let localizer = Localizer::new(&program, "testme", &Spec::Assertions, &config)?;
    let report = localizer.localize(&failing)?;

    println!("\npotential bug locations (in enumeration order):");
    for suspect in &report.suspects {
        println!("  CoMSS #{}: {}", suspect.rank + 1, suspect);
    }
    println!(
        "\n{} of {} program lines reported ({:.1}%)",
        report.suspect_lines.len(),
        localizer.program_lines(),
        report.size_reduction_percent(localizer.program_lines())
    );
    Ok(())
}
