//! Pruning-soundness property test: over a seeded corpus of random
//! straight-line programs, localizing with `static_prune` on and off must
//! produce *identical* reports (suspects, suspect lines, costs,
//! completeness) while the pruned instance carries strictly fewer soft
//! clauses whenever any line is statically irrelevant — across encoding
//! widths and with the word-level passes on and off. This is the
//! workspace-level pin of the invariant documented on
//! [`bugassist::LocalizerConfig::static_prune`]: a pruned line can never
//! appear in any CoMSS, so pruning may shrink the MAX-SAT instance but
//! never change its answer.

use bmc::{EncodeConfig, InterpConfig, Spec};
use bugassist::{LocalizationReport, Localizer, LocalizerConfig};

/// A random straight-line program over a few variables. Only some of the
/// variables feed the returned one, so most programs have statically
/// irrelevant lines for the prune to find.
fn random_straight_line(rng: &mut prng::SplitMix64, stmts: usize) -> String {
    let vars = ["a", "b", "c", "d"];
    let mut src = String::from("int main(int x, int y) {\n");
    for v in &vars {
        src.push_str(&format!("int {v} = {};\n", rng.gen_range(0i64..8)));
    }
    for _ in 0..stmts {
        let target = vars[rng.gen_range(0usize..vars.len())];
        let pick = |rng: &mut prng::SplitMix64| match rng.gen_range(0usize..6) {
            0 => "x".to_string(),
            1 => "y".to_string(),
            n => vars[n - 2].to_string(),
        };
        let lhs = pick(rng);
        let rhs = pick(rng);
        let op = ["+", "-", "*"][rng.gen_range(0usize..3)];
        src.push_str(&format!("{target} = {lhs} {op} {rhs};\n"));
    }
    let returned = vars[rng.gen_range(0usize..vars.len())];
    src.push_str(&format!("return {returned};\n}}\n"));
    src
}

/// The semantic content of a report: everything except the stats block.
fn semantics(report: &LocalizationReport) -> (Vec<bugassist::Suspect>, Vec<minic::Line>, bool) {
    (
        report.suspects.clone(),
        report.suspect_lines.clone(),
        report.complete,
    )
}

#[test]
fn reports_are_identical_with_pruning_on_and_off() {
    let mut rng = prng::SplitMix64::seed_from_u64(0x9121_03E5);
    let mut total_pruned = 0u64;
    let mut cases = 0usize;
    for round in 0..6 {
        let src = random_straight_line(&mut rng, 5 + (round % 4));
        let program = minic::parse_program(&src).expect("generated program parses");
        let input = vec![rng.gen_range(0i64..16), rng.gen_range(0i64..16)];
        for width in [8usize, 16] {
            // The concrete return value at this width; demanding one more
            // makes `input` a failing test with a real localization answer.
            let outcome = bmc::run_program(
                &program,
                "main",
                &input,
                &[],
                InterpConfig {
                    width,
                    ..InterpConfig::default()
                },
            );
            let Some(actual) = outcome.result else {
                continue;
            };
            let spec = Spec::ReturnEquals(actual + 1);
            for word_passes in [true, false] {
                let config = |static_prune: bool| LocalizerConfig {
                    encode: EncodeConfig {
                        width,
                        word_passes,
                        ..EncodeConfig::default()
                    },
                    static_prune,
                    ..LocalizerConfig::default()
                };
                let on = Localizer::new(&program, "main", &spec, &config(true))
                    .expect("encodes with pruning")
                    .localize(&input)
                    .expect("localizes with pruning");
                let off = Localizer::new(&program, "main", &spec, &config(false))
                    .expect("encodes without pruning")
                    .localize(&input)
                    .expect("localizes without pruning");
                assert_eq!(
                    semantics(&on),
                    semantics(&off),
                    "round {round} width {width} word_passes {word_passes} \
                     diverged on:\n{src}"
                );
                // The instance-size identity: every pruned line was a soft
                // selector the unpruned run still carried.
                assert_eq!(
                    on.stats.soft_clauses + on.stats.lines_pruned as usize,
                    off.stats.soft_clauses,
                    "prune arithmetic broke on:\n{src}"
                );
                assert_eq!(off.stats.lines_pruned, 0, "pruning was off");
                total_pruned += on.stats.lines_pruned;
                cases += 1;
            }
        }
    }
    assert!(cases >= 16, "corpus too small: {cases} cases ran");
    assert!(
        total_pruned > 0,
        "the corpus never exercised the prune: no irrelevant lines found"
    );
}
