//! TCAS localization equality regressions guarding the SAT-core rewrite:
//! the arena-backed solver with learnt-clause reduction must produce the
//! same localizations, the same batch ranking, and the same portfolio
//! answers as the straight-line paths.

use bmc::Spec;
use bugassist::{Localizer, LocalizerConfig, RankedReport};
use maxsat::Strategy;
use std::collections::BTreeMap;

fn tcas_failing_batch() -> (minic::Program, i64, Vec<Vec<i64>>) {
    let version = siemens::tcas_versions()
        .into_iter()
        .find(|v| v.name == "v1")
        .expect("v1 exists");
    let faulty = version.build(siemens::TCAS_SOURCE);
    let pool = siemens::tcas_test_vectors(120, 2011);
    let interp = siemens::tcas_interp_config();
    // Failing vectors grouped by golden output; a batch needs a shared spec.
    let mut by_golden: BTreeMap<i64, Vec<Vec<i64>>> = BTreeMap::new();
    for input in &pool {
        let golden = siemens::tcas_golden_output(input);
        let outcome = bmc::run_program(&faulty, siemens::TCAS_ENTRY, input, &[], interp);
        if outcome.result != Some(golden) || !outcome.is_ok() {
            by_golden.entry(golden).or_default().push(input.clone());
        }
    }
    let (&golden, failing) = by_golden
        .iter()
        .max_by_key(|(_, v)| v.len())
        .expect("v1 has failing vectors");
    assert!(failing.len() >= 3, "need >= 3 failing tests");
    (faulty, golden, failing.iter().take(3).cloned().collect())
}

fn config(strategy: Strategy, portfolio: bool) -> LocalizerConfig {
    LocalizerConfig {
        encode: bmc::EncodeConfig {
            width: 16,
            unwind: 6,
            max_inline_depth: 8,
            concretize: Vec::new(),
            ..bmc::EncodeConfig::default()
        },
        strategy,
        portfolio,
        max_suspect_sets: 2,
        trusted_lines: siemens::tcas_trusted_lines(),
        ..LocalizerConfig::default()
    }
}

/// `localize_batch` must rank exactly like sequentially localizing each test
/// and merging the reports — line for line, count for count.
#[test]
fn tcas_batch_ranking_equals_sequential_merge() {
    let (faulty, golden, batch) = tcas_failing_batch();
    let spec = Spec::ReturnEquals(golden);
    let cfg = config(Strategy::FuMalik, false);
    let localizer =
        Localizer::new(&faulty, siemens::TCAS_ENTRY, &spec, &cfg).expect("TCAS encodes");

    let batched = localizer.localize_batch(&batch).expect("batch succeeds");
    let sequential: Vec<_> = batch
        .iter()
        .map(|input| localizer.localize(input).expect("localization succeeds"))
        .collect();
    let merged = RankedReport::from_reports(sequential);

    assert_eq!(batched.per_test.len(), merged.per_test.len());
    for (b, s) in batched.per_test.iter().zip(&merged.per_test) {
        assert_eq!(b.suspect_lines, s.suspect_lines);
    }
    assert_eq!(batched.max_count, merged.max_count);
    assert_eq!(batched.ranking.len(), merged.ranking.len());
    for (b, s) in batched.ranking.iter().zip(&merged.ranking) {
        assert_eq!((b.line, b.count), (s.line, s.count));
    }
}

/// Every strategy — core-guided, model-improving and the racing portfolio —
/// must agree on the optimum CoMSS cost of the same failing test. (When
/// several optima tie on cost the strategies may legitimately pick different
/// ones, so cost is the strategy-invariant quantity; see
/// `portfolio_matches_single_strategy_report` in `bugassist`.)
#[test]
fn tcas_all_strategies_agree_on_optimal_cost() {
    let (faulty, golden, batch) = tcas_failing_batch();
    let spec = Spec::ReturnEquals(golden);
    let probe = &batch[0];

    let mut costs = Vec::new();
    for (label, strategy, portfolio) in [
        ("fu_malik", Strategy::FuMalik, false),
        ("linear_sat_unsat", Strategy::LinearSatUnsat, false),
        ("portfolio", Strategy::FuMalik, true),
    ] {
        let cfg = config(strategy, portfolio);
        let localizer =
            Localizer::new(&faulty, siemens::TCAS_ENTRY, &spec, &cfg).expect("TCAS encodes");
        let report = localizer.localize(probe).expect("localization succeeds");
        assert!(
            !report.suspect_lines.is_empty(),
            "{label}: no suspects reported"
        );
        // Trusted input-copy lines are never blamed, whatever the strategy.
        for line in siemens::tcas_trusted_lines() {
            assert!(!report.blames_line(line), "{label} blamed trusted {line}");
        }
        costs.push((label, report.suspects[0].cost));
    }
    let (first_label, first_cost) = costs[0];
    for &(label, cost) in &costs[1..] {
        assert_eq!(
            cost, first_cost,
            "{label} found a different optimum than {first_label}"
        );
    }
}
