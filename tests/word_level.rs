//! Word-level IR equivalence and shrinkage tests: the pre-bit-blast passes
//! (constant folding, ite flattening, cross-frame CSE, interval narrowing)
//! must be *semantically invisible* — localization reports pinned identical
//! with the passes on vs. off, randomized circuits bit-identical to the
//! concrete word-level evaluator — and *measurably effective* — the TCAS
//! trace formula must emit at least a quarter fewer gates before any CNF
//! machinery runs.

use bitblast::word::{NodeId, WordBuilder, WordConfig};
use bmc::{EncodeConfig, Spec};
use bugassist::{Localizer, LocalizerConfig};
use minic::ast::Line;
use prng::SplitMix64;
use sat::{SatResult, Solver};

/// TCAS v1 localizer config with the word-level knob set explicitly.
fn tcas_config(word_passes: bool) -> LocalizerConfig {
    LocalizerConfig {
        encode: EncodeConfig {
            width: 16,
            unwind: 6,
            max_inline_depth: 8,
            word_passes,
            ..EncodeConfig::default()
        },
        max_suspect_sets: 4,
        trusted_lines: siemens::tcas_trusted_lines(),
        ..LocalizerConfig::default()
    }
}

/// One failing TCAS v1 vector together with its golden output.
fn tcas_failing_case() -> (minic::Program, Vec<i64>, i64) {
    let version = siemens::tcas_versions().into_iter().next().expect("v1");
    let faulty = version.build(siemens::TCAS_SOURCE);
    let interp = siemens::tcas_interp_config();
    for input in siemens::tcas_test_vectors(120, 2011) {
        let golden = siemens::tcas_golden_output(&input);
        let outcome = bmc::run_program(&faulty, siemens::TCAS_ENTRY, &input, &[], interp);
        if outcome.result != Some(golden) || !outcome.is_ok() {
            return (faulty, input, golden);
        }
    }
    panic!("TCAS v1 has failing vectors in the first 120");
}

#[test]
fn tcas_reports_identical_with_and_without_word_passes() {
    let (faulty, input, golden) = tcas_failing_case();
    let spec = Spec::ReturnEquals(golden);
    let on = Localizer::new(&faulty, siemens::TCAS_ENTRY, &spec, &tcas_config(true))
        .expect("TCAS encodes");
    let off = Localizer::new(&faulty, siemens::TCAS_ENTRY, &spec, &tcas_config(false))
        .expect("TCAS encodes");
    let with_passes = on.localize(&input).expect("localizes");
    let without = off.localize(&input).expect("localizes");

    // Semantic content byte-identical (stats legitimately differ — that is
    // the whole point of the word-level diet).
    assert_eq!(
        format!("{:?}", with_passes.suspects),
        format!("{:?}", without.suspects)
    );
    assert_eq!(with_passes.suspect_lines, without.suspect_lines);
    assert!(!with_passes.suspects.is_empty());

    // Acceptance criterion: >= 25% fewer gates emitted *before* any CNF
    // machinery runs, and the counters prove the passes actually fired.
    let on_stats = on.trace().stats;
    let off_stats = off.trace().stats;
    assert!(
        on_stats.gates_emitted * 4 <= off_stats.gates_emitted * 3,
        "expected >= 25% fewer gates with the word-level passes, got {} -> {}",
        off_stats.gates_emitted,
        on_stats.gates_emitted
    );
    assert!(on_stats.word_nodes > 0);
    assert!(on_stats.word_nodes_folded > 0);
    assert!(on_stats.word_cse_hits > 0);
    assert!(on_stats.bits_narrowed > 0);
    // The reference encoding reports dead pass counters.
    assert_eq!(off_stats.word_nodes_folded, 0);
    assert_eq!(off_stats.word_cse_hits, 0);
    assert_eq!(off_stats.bits_narrowed, 0);
    // And the reports surface the counters for the service/bench layers.
    assert_eq!(
        with_passes.stats.word_nodes_folded,
        on_stats.word_nodes_folded
    );
    assert_eq!(with_passes.stats.bits_narrowed, on_stats.bits_narrowed);
}

/// The Siemens fault programs (worked examples included): word passes on vs.
/// off must pin byte-identical suspect sets on a real failing input.
#[test]
fn siemens_fault_programs_pin_word_level_reports() {
    // tot_info is deliberately absent for the same reason as in
    // tests/formula_diet.rs: its unreduced encode would dominate the suite.
    for benchmark in [
        siemens::printtokens(),
        siemens::schedule_small(),
        siemens::schedule2(),
    ] {
        let failing = benchmark.failing_inputs();
        let Some(input) = failing.first() else {
            panic!("{} has no failing inputs", benchmark.name);
        };
        let golden = benchmark
            .golden_output(input)
            .expect("failing input has a golden output");
        let faulty = benchmark.faulty_program();
        let base = LocalizerConfig {
            encode: EncodeConfig {
                width: benchmark.width,
                unwind: benchmark.unwind,
                max_inline_depth: 8,
                concretize: benchmark.concretize.clone(),
                ..EncodeConfig::default()
            },
            max_suspect_sets: 4,
            trusted_lines: benchmark.trusted_lines.clone(),
            ..LocalizerConfig::default()
        };
        let mut off_config = base.clone();
        off_config.encode.word_passes = false;
        let spec = Spec::ReturnEquals(golden);
        let on = Localizer::new(&faulty, benchmark.entry, &spec, &base).expect("encodes");
        let off = Localizer::new(&faulty, benchmark.entry, &spec, &off_config).expect("encodes");
        let with_passes = on.localize(input).expect("localizes");
        let without = off.localize(input).expect("localizes");
        assert_eq!(
            format!("{:?}", with_passes.suspects),
            format!("{:?}", without.suspects),
            "suspects diverged on {}",
            benchmark.name
        );
        assert_eq!(
            with_passes.suspect_lines, without.suspect_lines,
            "suspect lines diverged on {}",
            benchmark.name
        );
        assert!(
            on.trace().stats.gates_emitted < off.trace().stats.gates_emitted,
            "no pre-bit-blast shrinkage on {}",
            benchmark.name
        );
    }
}

/// The motivating example blames the paper's two fix points with the passes
/// on, and the revise (relabel) path carries the word counters unchanged —
/// this is the same reuse machinery the service's `revise` op drives.
#[test]
fn motivating_example_and_revise_path_with_word_passes() {
    let src = "int Array[3];\nint testme(int index) {\nif (index != 1) {\nindex = 2;\n} else {\nindex = index + 2;\n}\nint i = index;\nreturn Array[i];\n}";
    let program = minic::parse_program(src).unwrap();
    let config = LocalizerConfig {
        encode: EncodeConfig {
            width: 8,
            ..EncodeConfig::default()
        },
        ..LocalizerConfig::default()
    };
    let localizer = Localizer::new(&program, "testme", &Spec::Assertions, &config).unwrap();
    let report = localizer.localize(&[1]).unwrap();
    assert!(report.blames_line(Line(6)));
    assert!(report.blames_line(Line(3)));
    assert!(report.stats.word_nodes > 0);

    // The word-pass-off oracle agrees on the blame set.
    let mut off_config = config.clone();
    off_config.encode.word_passes = false;
    let oracle = Localizer::new(&program, "testme", &Spec::Assertions, &off_config).unwrap();
    let off_report = oracle.localize(&[1]).unwrap();
    assert_eq!(
        format!("{:?}", report.suspects),
        format!("{:?}", off_report.suspects)
    );

    // A pure line shift reuses the prepared word-level encoding: same
    // counters, shifted blame.
    let shifted_src = "int Array[3];\nint testme(int index) {\nif (index != 1) {\nindex = 2;\n} else {\n\nindex = index + 2;\n}\nint i = index;\nreturn Array[i];\n}";
    let shifted = minic::parse_program(shifted_src).unwrap();
    let (revised, delta) = localizer
        .reprepare(&program, &shifted, "testme", &Spec::Assertions, &config)
        .unwrap();
    assert!(delta.reused());
    let after = revised.localize(&[1]).unwrap();
    assert!(after.blames_line(Line(7)));
    assert_eq!(after.stats.word_nodes, report.stats.word_nodes);
    assert_eq!(
        after.stats.word_nodes_folded,
        report.stats.word_nodes_folded
    );
    assert_eq!(after.stats.word_cse_hits, report.stats.word_cse_hits);
    assert_eq!(after.stats.bits_narrowed, report.stats.bits_narrowed);
}

const RAND_WIDTH: usize = 7;

/// Grows a random boolean node. Mirrors [`gen_bv`]; both must consume the
/// same randomness for every configuration so that each [`WordConfig`]
/// builds the *same* tree.
fn gen_bool(b: &mut WordBuilder, rng: &mut SplitMix64, inputs: &[NodeId], depth: usize) -> NodeId {
    if depth == 0 {
        return if rng.gen_range(0..2usize) == 0 {
            b.tru()
        } else {
            b.fls()
        };
    }
    match rng.gen_range(0..6usize) {
        0 => {
            let x = gen_bv(b, rng, inputs, depth - 1);
            let y = gen_bv(b, rng, inputs, depth - 1);
            b.eq(x, y)
        }
        1 => {
            let x = gen_bv(b, rng, inputs, depth - 1);
            let y = gen_bv(b, rng, inputs, depth - 1);
            b.slt(x, y)
        }
        2 => {
            let x = gen_bv(b, rng, inputs, depth - 1);
            let y = gen_bv(b, rng, inputs, depth - 1);
            b.ult(x, y)
        }
        3 => {
            let x = gen_bool(b, rng, inputs, depth - 1);
            b.not(x)
        }
        4 => {
            let x = gen_bool(b, rng, inputs, depth - 1);
            let y = gen_bool(b, rng, inputs, depth - 1);
            b.and(x, y)
        }
        _ => {
            let x = gen_bool(b, rng, inputs, depth - 1);
            let y = gen_bool(b, rng, inputs, depth - 1);
            b.or(x, y)
        }
    }
}

/// Grows a random bit-vector node, deliberately biased toward the shapes the
/// passes rewrite: constant subtrees (folding), ite chains with constant
/// arms (flattening + narrowing), repeated subtrees (CSE).
fn gen_bv(b: &mut WordBuilder, rng: &mut SplitMix64, inputs: &[NodeId], depth: usize) -> NodeId {
    if depth == 0 || rng.gen_range(0..10usize) < 2 {
        return if rng.gen_range(0..3usize) == 0 {
            let v: i64 = rng.gen_range(-40..=40);
            b.const_bv(v)
        } else {
            inputs[rng.gen_range(0..inputs.len())]
        };
    }
    match rng.gen_range(0..13usize) {
        0 => {
            let x = gen_bv(b, rng, inputs, depth - 1);
            let y = gen_bv(b, rng, inputs, depth - 1);
            b.add(x, y)
        }
        1 => {
            let x = gen_bv(b, rng, inputs, depth - 1);
            let y = gen_bv(b, rng, inputs, depth - 1);
            b.sub(x, y)
        }
        2 => {
            let x = gen_bv(b, rng, inputs, depth - 1);
            let y = gen_bv(b, rng, inputs, depth - 1);
            b.mul(x, y)
        }
        3 => {
            let x = gen_bv(b, rng, inputs, depth - 1);
            let y = gen_bv(b, rng, inputs, depth - 1);
            b.bitand(x, y)
        }
        4 => {
            let x = gen_bv(b, rng, inputs, depth - 1);
            let y = gen_bv(b, rng, inputs, depth - 1);
            b.bitxor(x, y)
        }
        5 => {
            let c = gen_bool(b, rng, inputs, depth - 1);
            let t = gen_bv(b, rng, inputs, depth - 1);
            let e = gen_bv(b, rng, inputs, depth - 1);
            b.ite(c, t, e)
        }
        6 => {
            // Constant-armed selection: interval-narrowing fodder.
            let c = gen_bool(b, rng, inputs, depth - 1);
            let tv: i64 = rng.gen_range(0..=5);
            let ev: i64 = rng.gen_range(0..=5);
            let t = b.const_bv(tv);
            let e = b.const_bv(ev);
            b.ite(c, t, e)
        }
        7 => {
            let x = gen_bv(b, rng, inputs, depth - 1);
            b.neg(x)
        }
        8 => {
            let x = gen_bv(b, rng, inputs, depth - 1);
            b.bitnot(x)
        }
        9 => {
            // Repeated subtree: CSE fodder.
            let x = gen_bv(b, rng, inputs, depth - 1);
            b.add(x, x)
        }
        10 => {
            let x = gen_bv(b, rng, inputs, depth - 1);
            let y = gen_bv(b, rng, inputs, depth - 1);
            b.sdiv(x, y)
        }
        11 => {
            let x = gen_bv(b, rng, inputs, depth - 1);
            let y = gen_bv(b, rng, inputs, depth - 1);
            b.udiv(x, y)
        }
        _ => {
            let c = gen_bool(b, rng, inputs, depth - 1);
            let v = b.bool_to_bv(c);
            let x = gen_bv(b, rng, inputs, depth - 1);
            b.add(x, v)
        }
    }
}

/// Seeded randomized equivalence, one configuration per pass: for each pass
/// enabled in isolation (plus all-on and all-off), the same random word tree
/// must bit-blast to a circuit whose solver-computed outputs agree with the
/// pass-independent concrete evaluator on sampled inputs.
#[test]
fn randomized_circuits_agree_with_the_evaluator_under_every_pass() {
    let configs: [(&str, WordConfig); 6] = [
        ("off", WordConfig::off()),
        (
            "fold",
            WordConfig {
                fold: true,
                ..WordConfig::off()
            },
        ),
        (
            "flatten",
            WordConfig {
                flatten: true,
                ..WordConfig::off()
            },
        ),
        (
            "cse",
            WordConfig {
                cse: true,
                ..WordConfig::off()
            },
        ),
        (
            "narrow",
            WordConfig {
                narrow: true,
                ..WordConfig::off()
            },
        ),
        ("all", WordConfig::all()),
    ];
    for tree_seed in 0..24u64 {
        for (label, config) in &configs {
            // Re-seed per configuration: every config grows the same tree.
            let mut rng = SplitMix64::seed_from_u64(0xB06_A551 + tree_seed);
            let mut b = WordBuilder::new(RAND_WIDTH, *config);
            let inputs: Vec<NodeId> = (0..2).map(|_| b.input()).collect();
            let root = gen_bv(&mut b, &mut rng, &inputs, 4);
            let dag = b.into_dag();

            let mut enc = bitblast::Encoder::new(RAND_WIDTH);
            let mut roots = inputs.clone();
            roots.push(root);
            let lowered = dag.lower(&mut enc, &roots, true, config.narrow);
            let root_bv = lowered.bv(root).clone();
            let input_bvs: Vec<bitblast::BitVec> =
                inputs.iter().map(|&i| lowered.bv(i).clone()).collect();
            let mut solver = Solver::from_formula(enc.cnf().formula());

            for sample in 0..4 {
                let values: Vec<i64> = (0..2)
                    .map(|k| {
                        let mut vrng =
                            SplitMix64::seed_from_u64(tree_seed * 1000 + sample * 10 + k);
                        vrng.gen_range(-40..=40)
                    })
                    .collect();
                let expected = dag.eval(root, &values);
                let mut assumptions = Vec::new();
                for (bv, &value) in input_bvs.iter().zip(&values) {
                    for (i, &bit) in bv.bits().iter().enumerate() {
                        assumptions.push(bit.apply_sign(value >> i & 1 == 1));
                    }
                }
                assert_eq!(
                    solver.solve_assuming(&assumptions),
                    SatResult::Sat,
                    "tree {tree_seed} under {label} unsatisfiable"
                );
                let got = bitblast::Encoder::bv_value(&solver.model(), &root_bv);
                assert_eq!(
                    got, expected,
                    "tree {tree_seed} under {label} diverges on {values:?}"
                );
            }
        }
    }
}

/// Interval narrowing must survive CNF preprocessing and model
/// reconstruction: find a counterexample on the simplified formula of a
/// narrowing-heavy program, extend the model, and check it decodes to a real
/// failing input of the original program.
#[test]
fn narrowed_encodings_decode_through_extend_model() {
    let program = minic::parse_program(
        "int main(int x) {\nint r = 0;\nif (x > 0) {\nr = 1;\n} else {\nr = 2;\n}\nint s = (x < 5 ? 3 : 4) + r;\nassert(s != 5);\nreturn s;\n}",
    )
    .unwrap();
    let encode = EncodeConfig {
        width: 8,
        ..EncodeConfig::default()
    };
    let trace = bmc::encode_program(&program, "main", &Spec::Assertions, &encode).unwrap();
    assert!(
        trace.stats.bits_narrowed > 0,
        "the constant-armed selections must narrow: {:?}",
        trace.stats
    );

    let mut frozen: Vec<sat::Var> = vec![trace.property.var()];
    for (_, bv) in &trace.inputs {
        frozen.extend(bv.bits().iter().map(|b| b.var()));
    }
    let simplified = sat::simplify(
        trace.cnf.formula(),
        &frozen,
        &sat::SimplifyConfig::default(),
    );
    assert!(!simplified.unsat);

    let mut solver = Solver::from_formula(&simplified.cnf);
    assert_eq!(solver.solve_assuming(&[!trace.property]), SatResult::Sat);
    let mut model = solver.model();
    model.resize(trace.cnf.num_vars(), false);
    simplified.reconstruction.extend(&mut model);
    // The extended model satisfies the original bit-blasted formula, and the
    // decoded input really fails concretely (x <= 0 gives s = 3 + 2 = 5;
    // x >= 5 gives s = 4 + 1 = 5).
    assert!(trace.cnf.formula().eval(&model));
    let inputs = trace.inputs_from_model(&model);
    let outcome = bmc::run_program(
        &program,
        "main",
        &inputs,
        &[],
        bmc::InterpConfig {
            width: 8,
            ..bmc::InterpConfig::default()
        },
    );
    assert!(
        !outcome.is_ok(),
        "decoded input {inputs:?} must violate the assertion"
    );
}

/// The BTOR2 dump of a whole unrolled program round-trips through the
/// bundled parser and evaluates exactly like the original word-level DAG —
/// the external-format half of the differential oracle.
#[test]
fn dumped_trace_formulas_round_trip_and_agree() {
    let src = "int Array[3];\nint testme(int index) {\nif (index != 1) {\nindex = 2;\n} else {\nindex = index + 2;\n}\nint i = index;\nreturn Array[i];\n}";
    let program = minic::parse_program(src).unwrap();
    let config = EncodeConfig {
        width: 8,
        ..EncodeConfig::default()
    };
    let wt = bmc::word_trace(&program, "testme", &Spec::Assertions, &config).unwrap();
    let btor = bitblast::dump::btor2(&wt.dag, &wt.inputs, wt.property);
    let parsed = bitblast::dump::parse_btor2(&btor).expect("our own dump parses");
    assert_eq!(parsed.inputs.len(), wt.inputs.len());
    for index in [-3i64, 0, 1, 2, 5] {
        let expected = wt.dag.eval(wt.property, &[index]);
        let got = parsed.dag.eval(parsed.property, &[index]);
        assert_eq!(got, expected, "round-trip diverged at index {index}");
        // The property is the bounds check: it must fail exactly on the
        // paper's failing input, index = 1.
        assert_eq!(expected != 0, index != 1, "property wrong at {index}");
    }
    let smt = bitblast::dump::smtlib2(&wt.dag, &wt.inputs, wt.property);
    assert!(smt.contains("(set-logic QF_BV)"));
    assert!(smt.contains("|index|"));
    assert!(smt.contains("(check-sat)"));
}
