//! End-to-end integration test of experiment E1: the paper's motivating
//! example (Program 1, Sec. 2), from source text through BMC counterexample
//! generation, MAX-SAT localization, baseline comparison and repair.

use bmc::{EncodeConfig, SliceCriterion, Spec};
use bugassist::{Localizer, LocalizerConfig, RepairConfig, RepairKind};
use minic::ast::Line;

const SOURCE: &str = "int Array[3];\nint testme(int index) {\nif (index != 1) {\nindex = 2;\n} else {\nindex = index + 2;\n}\nint i = index;\nreturn Array[i];\n}";

fn encode_config() -> EncodeConfig {
    EncodeConfig {
        width: 8,
        ..EncodeConfig::default()
    }
}

#[test]
fn bmc_finds_the_paper_failing_input() {
    let program = minic::parse_program(SOURCE).unwrap();
    let failing = bmc::find_failing_input(&program, "testme", &Spec::Assertions, &encode_config())
        .unwrap()
        .expect("the motivating example has a bug");
    // The only failing input is index = 1 (every other value takes the safe
    // branch).
    assert_eq!(failing, vec![1]);
}

#[test]
fn localization_reports_the_papers_two_fix_points() {
    let program = minic::parse_program(SOURCE).unwrap();
    let config = LocalizerConfig {
        encode: encode_config(),
        ..LocalizerConfig::default()
    };
    let localizer = Localizer::new(&program, "testme", &Spec::Assertions, &config).unwrap();
    let report = localizer.localize(&[1]).unwrap();
    // The paper reports the faulty constant (our line 6) and the branch
    // condition (our line 3) as the two repair points.
    assert!(report.blames_line(Line(6)));
    assert!(report.blames_line(Line(3)));
    // Every reported CoMSS here is a single statement.
    assert!(report.suspects.iter().all(|s| s.lines.len() == 1));
    // And the first (minimum-cost) one has cost 1.
    assert_eq!(report.suspects[0].cost, 1);
}

#[test]
fn localization_is_finer_than_the_backward_slice() {
    let program = minic::parse_program(SOURCE).unwrap();
    let config = LocalizerConfig {
        encode: encode_config(),
        ..LocalizerConfig::default()
    };
    let localizer = Localizer::new(&program, "testme", &Spec::Assertions, &config).unwrap();
    let report = localizer.localize(&[1]).unwrap();
    let slice = baselines::slice_localizer(&program, "testme", SliceCriterion::Assertions);
    // The paper's Sec. 2 claim: the CoMSS view separates individual repair
    // points, while the slice lumps the whole dependence cone together; the
    // suspect set is never larger than the slice on this example.
    assert!(report.suspect_lines.len() <= slice.len());
    // Each enumerated CoMSS is a strict subset of the slice-sized blob.
    assert!(report.suspects.iter().all(|s| s.lines.len() < slice.len()));
}

#[test]
fn off_by_one_repair_fixes_the_faulty_constant() {
    let program = minic::parse_program(SOURCE).unwrap();
    let config = RepairConfig {
        localizer: LocalizerConfig {
            encode: encode_config(),
            ..LocalizerConfig::default()
        },
        kinds: vec![RepairKind::OffByOne],
        validate_with_bmc: false,
        max_repairs: 0,
    };
    let repairs =
        bugassist::suggest_repairs(&program, "testme", &Spec::Assertions, &[vec![1]], &config)
            .unwrap();
    // `index = index + 2` can be repaired to `index + 1` (the paper suggests
    // any constant in (-2, 2); ±1 both keep the access in bounds for the
    // failing test).
    assert!(
        repairs.iter().any(|r| r.line == Line(6)),
        "repairs: {:?}",
        repairs.iter().map(|r| r.to_string()).collect::<Vec<_>>()
    );
}
