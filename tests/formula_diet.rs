//! Formula-diet equivalence and shrinkage tests: the hash-consed encoder and
//! the selector-aware CNF preprocessor must be *semantically invisible* —
//! localization reports pinned identical with the machinery on vs. off — and
//! *measurably effective* — the TCAS trace formula must lose at least a
//! quarter of its hard clauses.

use bmc::{EncodeConfig, Spec};
use bugassist::{Localizer, LocalizerConfig};
use minic::ast::Line;
use sat::{SatResult, Solver};

/// TCAS v1 localizer config with the two formula-diet knobs set explicitly.
fn tcas_config(gate_cache: bool, simplify: bool) -> LocalizerConfig {
    LocalizerConfig {
        encode: EncodeConfig {
            width: 16,
            unwind: 6,
            max_inline_depth: 8,
            gate_cache,
            ..EncodeConfig::default()
        },
        max_suspect_sets: 4,
        trusted_lines: siemens::tcas_trusted_lines(),
        simplify,
        ..LocalizerConfig::default()
    }
}

/// One failing TCAS v1 vector together with its golden output.
fn tcas_failing_case() -> (minic::Program, Vec<i64>, i64) {
    let version = siemens::tcas_versions().into_iter().next().expect("v1");
    let faulty = version.build(siemens::TCAS_SOURCE);
    let interp = siemens::tcas_interp_config();
    for input in siemens::tcas_test_vectors(120, 2011) {
        let golden = siemens::tcas_golden_output(&input);
        let outcome = bmc::run_program(&faulty, siemens::TCAS_ENTRY, &input, &[], interp);
        if outcome.result != Some(golden) || !outcome.is_ok() {
            return (faulty, input, golden);
        }
    }
    panic!("TCAS v1 has failing vectors in the first 120");
}

#[test]
fn tcas_reports_identical_with_and_without_simplification() {
    let (faulty, input, golden) = tcas_failing_case();
    let spec = Spec::ReturnEquals(golden);
    let on = Localizer::new(
        &faulty,
        siemens::TCAS_ENTRY,
        &spec,
        &tcas_config(true, true),
    )
    .expect("TCAS encodes");
    let off = Localizer::new(
        &faulty,
        siemens::TCAS_ENTRY,
        &spec,
        &tcas_config(true, false),
    )
    .expect("TCAS encodes");
    let simplified = on.localize(&input).expect("localizes");
    let raw = off.localize(&input).expect("localizes");

    // Semantic content byte-identical (stats legitimately differ — that is
    // the whole point of the diet).
    assert_eq!(
        format!("{:?}", simplified.suspects),
        format!("{:?}", raw.suspects)
    );
    assert_eq!(simplified.suspect_lines, raw.suspect_lines);
    assert!(!simplified.suspects.is_empty());

    // Acceptance criterion: >= 25% fewer hard clauses on the TCAS trace
    // formula, and the counters prove the pipeline actually ran.
    let stats = simplified.stats;
    assert!(stats.hard_clauses_pre_simplify > 0);
    assert!(
        stats.hard_clauses * 4 <= stats.hard_clauses_pre_simplify * 3,
        "expected >= 25% hard-clause reduction, got {} -> {}",
        stats.hard_clauses_pre_simplify,
        stats.hard_clauses
    );
    assert!(stats.vars_eliminated > 0);
    assert!(stats.encode_gates_cached > 0);
    // The unsimplified run reports the raw formula and zeroed diet counters
    // (`hard_clauses` additionally counts the per-test units appended on top
    // of the template, so it sits slightly above the template count).
    assert_eq!(raw.stats.vars_eliminated, 0);
    assert_eq!(raw.stats.clauses_subsumed, 0);
    assert!(raw.stats.hard_clauses >= raw.stats.hard_clauses_pre_simplify);
}

#[test]
fn tcas_reports_identical_with_and_without_the_gate_cache() {
    let (faulty, input, golden) = tcas_failing_case();
    let spec = Spec::ReturnEquals(golden);
    // Compare with simplification off on both sides so only the encoder
    // differs; the cached encoding must blame exactly the same lines.
    let cached = Localizer::new(
        &faulty,
        siemens::TCAS_ENTRY,
        &spec,
        &tcas_config(true, false),
    )
    .expect("TCAS encodes");
    let naive = Localizer::new(
        &faulty,
        siemens::TCAS_ENTRY,
        &spec,
        &tcas_config(false, false),
    )
    .expect("TCAS encodes");
    let with_cache = cached.localize(&input).expect("localizes");
    let without = naive.localize(&input).expect("localizes");
    assert_eq!(with_cache.suspect_lines, without.suspect_lines);
    assert_eq!(
        with_cache
            .suspects
            .iter()
            .map(|s| s.cost)
            .collect::<Vec<_>>(),
        without.suspects.iter().map(|s| s.cost).collect::<Vec<_>>(),
    );
    // And it must be a diet, not a rename: fewer variables and clauses.
    assert!(with_cache.stats.variables < without.stats.variables);
    assert!(with_cache.stats.hard_clauses < without.stats.hard_clauses);
    assert!(with_cache.stats.encode_gates_cached > 0);
    assert_eq!(without.stats.encode_gates_cached, 0);
}

/// The Siemens fault programs (worked examples included): simplification on
/// vs. off must pin byte-identical suspect sets on a real failing input.
#[test]
fn siemens_fault_programs_pin_simplified_reports() {
    // tot_info is deliberately absent: its unreduced encode is ~1.2M clauses
    // (the simplifier degrades to unit propagation there by design, see
    // `SimplifyConfig::max_clauses`) and a debug-mode localization of it
    // would dominate the whole suite.
    for benchmark in [
        siemens::printtokens(),
        siemens::schedule_small(),
        siemens::schedule2(),
    ] {
        let failing = benchmark.failing_inputs();
        let Some(input) = failing.first() else {
            panic!("{} has no failing inputs", benchmark.name);
        };
        let golden = benchmark
            .golden_output(input)
            .expect("failing input has a golden output");
        let faulty = benchmark.faulty_program();
        let base = LocalizerConfig {
            encode: EncodeConfig {
                width: benchmark.width,
                unwind: benchmark.unwind,
                max_inline_depth: 8,
                concretize: benchmark.concretize.clone(),
                ..EncodeConfig::default()
            },
            max_suspect_sets: 4,
            trusted_lines: benchmark.trusted_lines.clone(),
            ..LocalizerConfig::default()
        };
        let mut raw_config = base.clone();
        raw_config.simplify = false;
        let spec = Spec::ReturnEquals(golden);
        let on = Localizer::new(&faulty, benchmark.entry, &spec, &base).expect("encodes");
        let off = Localizer::new(&faulty, benchmark.entry, &spec, &raw_config).expect("encodes");
        let simplified = on.localize(input).expect("localizes");
        let plain = off.localize(input).expect("localizes");
        assert_eq!(
            format!("{:?}", simplified.suspects),
            format!("{:?}", plain.suspects),
            "suspects diverged on {}",
            benchmark.name
        );
        assert_eq!(
            simplified.suspect_lines, plain.suspect_lines,
            "suspect lines diverged on {}",
            benchmark.name
        );
        assert!(
            simplified.stats.hard_clauses < plain.stats.hard_clauses,
            "no shrinkage on {}",
            benchmark.name
        );
    }
}

/// Counterexample decoding through the reconstruction map: simplify a trace
/// formula with only the inputs and the property frozen, find a violating
/// model of the *simplified* formula, extend it, and check that the decoded
/// input (a) satisfies the original formula's model semantics and (b) really
/// fails when executed concretely.
#[test]
fn counterexamples_decode_through_the_reconstruction_map() {
    let program = minic::parse_program(
        "int main(int x) {\nint y = x * 3 + 1;\nassert(y != 22);\nreturn y;\n}",
    )
    .unwrap();
    let encode = EncodeConfig {
        width: 8,
        ..EncodeConfig::default()
    };
    let trace = bmc::encode_program(&program, "main", &Spec::Assertions, &encode).unwrap();
    let mut frozen: Vec<sat::Var> = vec![trace.property.var()];
    for (_, bv) in &trace.inputs {
        frozen.extend(bv.bits().iter().map(|b| b.var()));
    }
    let simplified = sat::simplify(
        trace.cnf.formula(),
        &frozen,
        &sat::SimplifyConfig::default(),
    );
    assert!(!simplified.unsat);
    assert!(simplified.stats.vars_eliminated > 0);

    let mut solver = Solver::from_formula(&simplified.cnf);
    assert_eq!(solver.solve_assuming(&[!trace.property]), SatResult::Sat);
    let mut model = solver.model();
    model.resize(trace.cnf.num_vars(), false);
    simplified.reconstruction.extend(&mut model);
    // The extended model satisfies the *original* bit-blasted formula.
    assert!(trace.cnf.formula().eval(&model));
    // And the decoded counterexample is real: x = 7 makes y = 22.
    let inputs = trace.inputs_from_model(&model);
    assert_eq!(inputs, vec![7]);
    let outcome = bmc::run_program(
        &program,
        "main",
        &inputs,
        &[],
        bmc::InterpConfig {
            width: 8,
            ..bmc::InterpConfig::default()
        },
    );
    assert!(!outcome.is_ok(), "decoded input must violate the assertion");
}

/// The motivating example still blames the paper's two fix points through
/// the full diet (cache + preprocessing + core trimming), and the revise
/// (relabel) path carries the diet counters over unchanged.
#[test]
fn motivating_example_survives_the_full_diet() {
    let src = "int Array[3];\nint testme(int index) {\nif (index != 1) {\nindex = 2;\n} else {\nindex = index + 2;\n}\nint i = index;\nreturn Array[i];\n}";
    let program = minic::parse_program(src).unwrap();
    let config = LocalizerConfig {
        encode: EncodeConfig {
            width: 8,
            ..EncodeConfig::default()
        },
        ..LocalizerConfig::default()
    };
    let localizer = Localizer::new(&program, "testme", &Spec::Assertions, &config).unwrap();
    let report = localizer.localize(&[1]).unwrap();
    assert!(report.blames_line(Line(6)));
    assert!(report.blames_line(Line(3)));
    assert!(report.stats.vars_eliminated > 0);

    // A pure line shift reuses the prepared (already simplified) formula:
    // same diet counters, shifted blame.
    let shifted_src = "int Array[3];\nint testme(int index) {\nif (index != 1) {\nindex = 2;\n} else {\n\nindex = index + 2;\n}\nint i = index;\nreturn Array[i];\n}";
    let shifted = minic::parse_program(shifted_src).unwrap();
    let (revised, delta) = localizer
        .reprepare(&program, &shifted, "testme", &Spec::Assertions, &config)
        .unwrap();
    assert!(delta.reused());
    let after = revised.localize(&[1]).unwrap();
    assert!(after.blames_line(Line(7)));
    assert_eq!(after.stats.vars_eliminated, report.stats.vars_eliminated);
    assert_eq!(after.stats.clauses_subsumed, report.stats.clauses_subsumed);
    assert_eq!(after.stats.hard_clauses, report.stats.hard_clauses);
}
