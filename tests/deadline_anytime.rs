//! The anytime contract of budgeted localization, pinned on the paper's
//! TCAS workload: a wall-clock deadline that expires mid-enumeration must
//! come back with a report — never an error, never a hang — whose ranks
//! are a proven prefix of the exact enumeration, except possibly a final
//! *anytime* rank whose cost upper-bounds that rank's true optimum. And
//! the expiry must leave no residue: re-running unbudgeted on the same
//! (shared, prepared) localizer reproduces the exact report.

use bmc::Spec;
use bugassist::{Budget, Localizer, LocalizerConfig};
use std::time::{Duration, Instant};

/// TCAS v1 plus one failing vector and its golden output.
fn tcas_failing_case() -> (minic::Program, i64, Vec<i64>) {
    let version = siemens::tcas_versions()
        .into_iter()
        .find(|v| v.name == "v1")
        .expect("v1 exists");
    let faulty = version.build(siemens::TCAS_SOURCE);
    let pool = siemens::tcas_test_vectors(120, 2011);
    let interp = siemens::tcas_interp_config();
    let failing = pool
        .iter()
        .find(|input| {
            let golden = siemens::tcas_golden_output(input);
            let outcome = bmc::run_program(&faulty, siemens::TCAS_ENTRY, input, &[], interp);
            outcome.result != Some(golden) || !outcome.is_ok()
        })
        .expect("v1 has a failing vector");
    (
        faulty,
        siemens::tcas_golden_output(failing),
        failing.clone(),
    )
}

fn config() -> LocalizerConfig {
    LocalizerConfig {
        encode: bmc::EncodeConfig {
            width: 16,
            unwind: 6,
            max_inline_depth: 8,
            ..bmc::EncodeConfig::default()
        },
        max_suspect_sets: 4,
        trusted_lines: siemens::tcas_trusted_lines(),
        ..LocalizerConfig::default()
    }
}

#[test]
fn tcas_mid_solve_deadline_yields_anytime_upper_bound_or_exact() {
    let (faulty, golden, input) = tcas_failing_case();
    let localizer = Localizer::new(
        &faulty,
        siemens::TCAS_ENTRY,
        &Spec::ReturnEquals(golden),
        &config(),
    )
    .expect("TCAS encodes");

    // Prepare the formula up front so both runs below are solve-only and
    // the deadline lands inside the enumeration, not the bit-blast.
    localizer.warm();
    let started = Instant::now();
    let exact = localizer.localize(&input).expect("exact run");
    let exact_wall = started.elapsed();
    assert!(exact.complete, "unbudgeted runs are always complete");
    assert!(!exact.suspects.is_empty(), "TCAS v1 has suspects");

    // A deadline at a fifth of the exact solve time: almost certainly cuts
    // the enumeration mid-flight. (If this machine races through anyway,
    // the contract demands the exact report — both arms are pinned.)
    let deadline = (exact_wall / 5).max(Duration::from_millis(1));
    let budgeted = localizer
        .localize_budgeted(&input, None, Budget::with_timeout(deadline))
        .expect("budget expiry is never an error");

    if budgeted.complete {
        assert_eq!(budgeted.suspects, exact.suspects);
        assert_eq!(budgeted.suspect_lines, exact.suspect_lines);
    } else {
        // A cut run reports a prefix: never more ranks than the exact run.
        assert!(
            budgeted.suspects.len() <= exact.suspects.len(),
            "anytime run found {} ranks, exact run {}",
            budgeted.suspects.len(),
            exact.suspects.len()
        );
        // Every rank but the last was returned as a *proven* optimum, and
        // proven ranks of the deterministic enumeration are canonical:
        // they equal the exact run's ranks exactly.
        if budgeted.suspects.len() > 1 {
            let proven = budgeted.suspects.len() - 1;
            assert_eq!(
                budgeted.suspects[..proven],
                exact.suspects[..proven],
                "completed ranks must be prefix-identical to the exact run"
            );
        }
        // The final rank may be an anytime incumbent: its cost
        // upper-bounds the true optimum of that rank (equality when the
        // incumbent happened to be optimal).
        for (got, want) in budgeted.suspects.iter().zip(&exact.suspects) {
            assert!(
                got.cost >= want.cost,
                "rank {} anytime cost {} undercuts the true optimum {}",
                got.rank,
                got.cost,
                want.cost
            );
        }
    }

    // No residue: the cut enumeration shares its prepared formula with
    // every later call on this localizer, and an unbudgeted re-run must
    // reproduce the exact report in full.
    let again = localizer
        .localize_budgeted(&input, None, Budget::UNLIMITED)
        .expect("re-run");
    assert!(again.complete);
    assert_eq!(again.suspects, exact.suspects);
    assert_eq!(again.suspect_lines, exact.suspect_lines);
}
