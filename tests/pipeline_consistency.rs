//! Cross-crate consistency checks: the concrete interpreter, the symbolic
//! encoder and the localizer must agree about which tests fail and why, on
//! the benchmark programs shipped with the workspace.

use bmc::{EncodeConfig, InterpConfig, Spec};
use bugassist::{Localizer, LocalizerConfig};
use sat::{SatResult, Solver};

/// For a sample of TCAS vectors, the symbolic encoding (with the input fixed
/// as hard unit clauses) must judge the golden-output property exactly like
/// the concrete interpreter does.
#[test]
fn symbolic_and_concrete_tcas_agree() {
    let program = siemens::tcas_program();
    let encode = EncodeConfig {
        width: 16,
        unwind: 6,
        max_inline_depth: 8,
        concretize: Vec::new(),
        ..EncodeConfig::default()
    };
    let vectors = siemens::tcas_test_vectors(12, 99);
    for input in &vectors {
        let golden = siemens::tcas_golden_output(input);
        let trace = bmc::encode_program(
            &program,
            siemens::TCAS_ENTRY,
            &Spec::ReturnEquals(golden),
            &encode,
        )
        .expect("TCAS encodes");
        let mut solver = Solver::from_formula(trace.cnf.formula());
        let mut assumptions = trace.input_assumption_lits(input);
        assumptions.push(trace.property);
        // The correct program always meets its own golden output.
        assert_eq!(
            solver.solve_assuming(&assumptions),
            SatResult::Sat,
            "correct TCAS disagrees with its golden output on {input:?}"
        );
    }
}

/// Localizing a faulty TCAS version must point at the injected line for at
/// least one failing vector (spot check of the Table 1 machinery; the full
/// sweep lives in the `table1` bench binary).
#[test]
fn tcas_injected_fault_is_found_for_a_failing_vector() {
    let version = siemens::tcas_versions()
        .into_iter()
        .find(|v| v.name == "v1")
        .expect("v1 exists");
    let faulty = version.build(siemens::TCAS_SOURCE);
    let pool = siemens::tcas_test_vectors(300, 2011);
    let interp = siemens::tcas_interp_config();
    let failing = pool
        .iter()
        .find(|input| {
            let golden = siemens::tcas_golden_output(input);
            let outcome = bmc::run_program(&faulty, siemens::TCAS_ENTRY, input, &[], interp);
            outcome.result != Some(golden)
        })
        .expect("v1 has failing vectors");
    let golden = siemens::tcas_golden_output(failing);
    let config = LocalizerConfig {
        encode: EncodeConfig {
            width: 16,
            unwind: 6,
            max_inline_depth: 8,
            concretize: Vec::new(),
            ..EncodeConfig::default()
        },
        max_suspect_sets: 24,
        trusted_lines: siemens::tcas_trusted_lines(),
        ..LocalizerConfig::default()
    };
    let localizer = Localizer::new(
        &faulty,
        siemens::TCAS_ENTRY,
        &Spec::ReturnEquals(golden),
        &config,
    )
    .unwrap();
    let report = localizer.localize(failing).unwrap();
    assert!(
        version.faulty_lines.iter().any(|l| report.blames_line(*l)),
        "suspects {:?} do not include the injected line {:?}",
        report.suspect_lines,
        version.faulty_lines
    );
    // Trusted input-copy lines are never blamed.
    for line in siemens::tcas_trusted_lines() {
        assert!(!report.blames_line(line));
    }
}

/// The Table 3 trace-reduction machinery must actually shrink the encodings
/// and keep the injected fault localizable on the reduced program.
#[test]
fn trace_reduction_shrinks_the_totinfo_encoding() {
    let benchmark = siemens::totinfo();
    let faulty = benchmark.faulty_program();
    let spec = Spec::ReturnEquals(
        benchmark
            .golden_output(&benchmark.test_inputs[0])
            .expect("golden output exists"),
    );
    let encode = EncodeConfig {
        width: benchmark.width,
        unwind: benchmark.unwind,
        max_inline_depth: 16,
        concretize: Vec::new(),
        ..EncodeConfig::default()
    };
    let before = bmc::encode_program(&faulty, benchmark.entry, &spec, &encode).unwrap();
    let slice = bmc::backward_slice(&faulty, benchmark.entry, bmc::SliceCriterion::ReturnValue);
    let reduced = bmc::slice_program(&faulty, &slice);
    let after = bmc::encode_program(&reduced, benchmark.entry, &spec, &encode).unwrap();
    assert!(
        after.stats.clauses < before.stats.clauses,
        "slicing should remove the statistics-reporting code: {} vs {}",
        after.stats.clauses,
        before.stats.clauses
    );
    assert!(after.stats.assignments < before.stats.assignments);
}

/// Every benchmark's faulty version must be observably different from the
/// correct program under its own test pool, and the interpreter must agree
/// with the spectrum-baseline classification.
#[test]
fn benchmark_pools_expose_their_faults() {
    for benchmark in siemens::table3_benchmarks() {
        let failing = benchmark.failing_inputs();
        assert!(
            !failing.is_empty(),
            "{}: the shipped test pool does not expose the fault",
            benchmark.name
        );
        let interp = InterpConfig {
            width: benchmark.width,
            max_steps: 200_000,
        };
        let faulty = benchmark.faulty_program();
        let mut spectrum = baselines::SpectrumLocalizer::new();
        spectrum.add_suite(
            &faulty,
            benchmark.entry,
            &benchmark.test_inputs,
            |input| benchmark.golden_output(input),
            interp,
        );
        assert!(spectrum.failed_runs() >= failing.len());
    }
}
