//! # bugassist-suite — umbrella crate for the BugAssist reproduction
//!
//! This crate exists to host the runnable [examples](https://github.com/)
//! (`examples/`) and the cross-crate integration tests (`tests/`) of the
//! workspace. It simply re-exports the member crates so the examples can use
//! one coherent namespace; library users should depend on the individual
//! crates (`bugassist`, `bmc`, `maxsat`, `sat`, `minic`, `bitblast`,
//! `siemens`, `baselines`) directly.

#![warn(missing_docs)]

pub use baselines;
pub use bitblast;
pub use bmc;
pub use bugassist;
pub use maxsat;
pub use minic;
pub use sat;
pub use siemens;
